//! Straggler-aware over-selection — a deployment-grade variant of
//! HierMinimax's Phase 1 used by production FL systems (cf. Bonawitz et
//! al., "Towards Federated Learning at Scale", the paper's reference [3],
//! which over-provisions participants and proceeds with the earliest
//! reporters).
//!
//! The cloud samples `m_over ≥ m_E` edges by the current weights, but the
//! round closes as soon as the fastest `m_E` finish; the stragglers'
//! updates are discarded. Under heterogeneous edge speeds this bounds the
//! synchronous round's wall-clock by the `m_E`-th *fastest* sampled edge
//! rather than the slowest, at the cost of a mild participation bias
//! toward fast edges (quantified in the tests and the example).
//!
//! Per-edge speeds are part of the config (seconds per time slot); the
//! run's simulated wall-clock is accumulated internally and reported in
//! [`OverselectResult::simulated_seconds`], alongside the usual
//! [`RunResult`].

use super::hier_common::{multiplicities, robust_reduce_into, run_edge_blocks, EdgeBlockParams};
use super::hierminimax::{delivery_fault_kind, record_edge_fault};
use super::{finish_round, Algorithm, IterateAverage, RunOpts, RunResult};
use crate::checkpoint::{CheckpointCtx, ResumedRun};
use crate::history::History;
use crate::localsgd::estimate_loss;
use crate::problem::FederatedProblem;
use hm_checkpoint::format::{ByteReader, ByteWriter};
use hm_data::rng::{Purpose, StreamKey, StreamRng};
use hm_optim::sgd::projected_ascent_step;
use hm_simnet::sampling::{sample_checkpoint, sample_edges_uniform, sample_edges_weighted};
use hm_simnet::trace::Event;
use hm_simnet::{CommMeter, FaultInjector, FaultKind, FaultStats, Link, MsgChannel};
use hm_telemetry::{Phase, TelemetryEvent};

/// Snapshot extras section holding `(simulated_seconds, discarded)`.
const OVERSELECT_SECTION: &str = "overselect";

/// Configuration of an over-selecting HierMinimax run.
#[derive(Debug, Clone)]
pub struct OverselectConfig {
    /// Training rounds `K`.
    pub rounds: usize,
    /// Local SGD steps per client-edge aggregation (`τ1`).
    pub tau1: usize,
    /// Client-edge aggregations per round (`τ2`).
    pub tau2: usize,
    /// Edges whose updates the cloud actually uses per round (`m_E`).
    pub m_edges: usize,
    /// Edges sampled per round (`≥ m_edges`); the slowest
    /// `m_over − m_edges` are discarded.
    pub m_over: usize,
    /// Seconds of simulated wall-clock per time slot, per edge (length
    /// `N_E`): the straggler profile.
    pub seconds_per_slot: Vec<f64>,
    /// Model learning rate.
    pub eta_w: f32,
    /// Weight learning rate.
    pub eta_p: f32,
    /// Mini-batch size for local SGD.
    pub batch_size: usize,
    /// Mini-batch size for loss estimation.
    pub loss_batch: usize,
    /// Per-block client dropout probability (folded into the fault plan's
    /// `client_crash`; `0.0` = the paper's failure-free protocol).
    pub dropout: f32,
    /// Shared runner options.
    pub opts: RunOpts,
}

/// An over-selection run's result: the usual [`RunResult`] plus the
/// simulated wall-clock the straggler profile induced.
#[derive(Debug, Clone)]
pub struct OverselectResult {
    /// The standard run output.
    pub run: RunResult,
    /// Total simulated seconds (sum over rounds of the `m_E`-th fastest
    /// sampled edge's completion time).
    pub simulated_seconds: f64,
    /// How many sampled-edge slots were discarded as stragglers.
    pub discarded: usize,
}

/// Over-selecting HierMinimax.
#[derive(Debug, Clone)]
pub struct OverselectMinimax {
    cfg: OverselectConfig,
}

impl OverselectMinimax {
    /// Build a runner.
    ///
    /// # Panics
    /// Panics on degenerate configs or `m_over < m_edges`.
    pub fn new(cfg: OverselectConfig) -> Self {
        assert!(cfg.rounds > 0 && cfg.tau1 > 0 && cfg.tau2 > 0);
        assert!(cfg.m_edges > 0 && cfg.m_over >= cfg.m_edges);
        assert!(cfg
            .seconds_per_slot
            .iter()
            .all(|&s| s > 0.0 && s.is_finite()));
        Self { cfg }
    }

    /// Run, returning both the standard result and the timing account.
    pub fn run_timed(&self, problem: &FederatedProblem, seed: u64) -> OverselectResult {
        let cfg = &self.cfg;
        assert!(
            cfg.opts.churn.is_none(),
            "OverselectMinimax does not support membership churn; use HierMinimax"
        );
        let n_edges = problem.num_edges();
        let n0 = problem.clients_per_edge();
        assert_eq!(cfg.seconds_per_slot.len(), n_edges, "one speed per edge");
        assert!(
            cfg.m_over <= n_edges,
            "m_over {} exceeds {} edges",
            cfg.m_over,
            n_edges
        );
        let d = problem.num_params();
        let meter = CommMeter::new();
        let trace = cfg.opts.make_trace();
        let mut history = History::default();
        let mut avg_w = IterateAverage::new(d);
        let mut avg_p = IterateAverage::new(n_edges);
        let mut simulated_seconds = 0.0_f64;
        let mut discarded = 0usize;
        let slots_per_round = cfg.tau1 * cfg.tau2;
        let fault = FaultInjector::new(seed, cfg.opts.fault.clone().with_dropout(cfg.dropout));
        let mut faults_prev = FaultStats::default();
        let mut adv_prev = hm_simnet::QuarantineStats::default();
        let tel = &cfg.opts.telemetry;

        let mut w = problem
            .model
            .init_params(&mut StreamRng::for_key(StreamKey::new(
                seed,
                Purpose::Init,
                0,
                0,
            )));
        let mut p = problem.initial_p();

        // Resume path. Over-selection has no run-level telemetry stream
        // (only fault events), so checkpoint events are suppressed; the
        // simulated clock and discard counter ride the snapshot's extras.
        let resumed = ResumedRun::from_opts(&cfg.opts, "Overselect", seed, cfg.rounds);
        let start_round = match &resumed {
            Some(rr) => {
                w.clone_from(&rr.w);
                p.clone_from(&rr.p);
                avg_w = rr.avg_w.clone();
                avg_p = rr.avg_p.clone();
                history = rr.history.clone();
                meter.restore(&rr.comm);
                fault.restore(&rr.faults);
                faults_prev = rr.faults;
                let extra = rr
                    .snap
                    .extra(OVERSELECT_SECTION)
                    .expect("overselect snapshot carries its clock section");
                let mut r = ByteReader::new(extra);
                simulated_seconds = r.get_f64().expect("clock");
                discarded = r.get_u64().expect("discard count") as usize;
                rr.start_round
            }
            None => 0,
        };
        let ckpt = CheckpointCtx::new(&cfg.opts, "Overselect", seed, cfg.rounds, false);

        let prof = &cfg.opts.profile;
        for k in start_round..cfg.rounds {
            let round_span = prof.start();
            let sampling_span = prof.start();
            // Over-sample by p, then keep the m_E fastest sampled slots.
            let mut e_rng =
                StreamRng::for_key(StreamKey::new(seed, Purpose::EdgeSampling, k as u64, 0));
            let p64: Vec<f64> = p.iter().map(|&x| f64::from(x).max(0.0)).collect();
            let mut sampled = sample_edges_weighted(&p64, cfg.m_over, &mut e_rng);
            sampled.sort_by(|&a, &b| {
                cfg.seconds_per_slot[a]
                    .partial_cmp(&cfg.seconds_per_slot[b])
                    .expect("finite speeds")
            });
            discarded += sampled.len() - cfg.m_edges;
            sampled.truncate(cfg.m_edges);
            // Round time: the slowest *kept* edge (the m_E-th fastest).
            let round_secs = sampled
                .iter()
                .map(|&e| cfg.seconds_per_slot[e] * slots_per_round as f64)
                .fold(0.0_f64, f64::max);
            simulated_seconds += round_secs;
            trace.record(|| Event::Phase1EdgesSampled {
                round: k,
                edges: sampled.clone(),
            });

            let mut c_rng =
                StreamRng::for_key(StreamKey::new(seed, Purpose::Checkpoint, k as u64, 0));
            let (c1, c2) = sample_checkpoint(cfg.tau1, cfg.tau2, &mut c_rng);
            let (distinct, counts) = multiplicities(&sampled);
            prof.record(tel, Phase::Phase1Sampling, Some(k), None, sampling_span);

            // Fault pipeline on the kept (fastest) edges: outage filter,
            // then downlink deliveries with metered retries.
            let mut active: Vec<usize> = Vec::with_capacity(distinct.len());
            let mut active_counts: Vec<usize> = Vec::with_capacity(distinct.len());
            for (&e, &c) in distinct.iter().zip(&counts) {
                if fault.edge_out(k as u64, 0, e) {
                    record_edge_fault(&trace, tel, k, 0, e, FaultKind::EdgeOutage, 0);
                } else {
                    active.push(e);
                    active_counts.push(c);
                }
            }
            meter.record_broadcast(Link::EdgeCloud, d as u64 + 2, active.len() as u64);
            let mut participants: Vec<usize> = Vec::with_capacity(active.len());
            let mut part_counts: Vec<usize> = Vec::with_capacity(active.len());
            let mut retries = 0u64;
            let retry_span = prof.start();
            for (&e, &c) in active.iter().zip(&active_counts) {
                let dv = fault.deliver(k as u64, 0, MsgChannel::Phase1Down, e);
                retries += u64::from(dv.attempts - 1);
                if let Some(kind) = delivery_fault_kind(dv.delivered, dv.attempts) {
                    record_edge_fault(&trace, tel, k, 0, e, kind, dv.attempts as usize);
                }
                if dv.delivered {
                    participants.push(e);
                    part_counts.push(c);
                }
            }
            // Retried downlinks, metered once for the whole loop (every
            // retry carries the same payload, so the totals are exact).
            if retries > 0 {
                meter.record_broadcast(Link::EdgeCloud, d as u64 + 2, retries);
                prof.record(tel, Phase::FaultRetry, Some(k), None, retry_span);
            }

            let outputs = run_edge_blocks(EdgeBlockParams {
                problem,
                w_start: &w,
                edges: &participants,
                tau1: cfg.tau1,
                tau2: cfg.tau2,
                eta_w: cfg.eta_w,
                batch_size: cfg.batch_size,
                checkpoint: Some((c1, c2)),
                quantizer: Default::default(),
                fault: &fault,
                level: 0,
                record_rounds: true,
                round: k,
                seed,
                meter: &meter,
                par: cfg.opts.parallelism,
                engine: cfg.opts.engine,
                trace: &trace,
                telemetry: &cfg.opts.telemetry,
                profile: prof,
                aggregator: cfg.opts.aggregator,
                quarantined: &[],
                track_norms: false,
                roster: None,
            });
            let mut reported: Vec<usize> = Vec::with_capacity(participants.len());
            let mut retries = 0u64;
            let retry_span = prof.start();
            for (i, &e) in participants.iter().enumerate() {
                let dv = fault.deliver(k as u64, 0, MsgChannel::Phase1Up, e);
                retries += u64::from(dv.attempts - 1);
                if let Some(kind) = delivery_fault_kind(dv.delivered, dv.attempts) {
                    record_edge_fault(&trace, tel, k, 0, e, kind, dv.attempts as usize);
                }
                if dv.delivered {
                    reported.push(i);
                }
            }
            if retries > 0 {
                meter.record_gather(Link::EdgeCloud, 2 * d as u64, retries);
                prof.record(tel, Phase::FaultRetry, Some(k), None, retry_span);
            }
            meter.record_gather(Link::EdgeCloud, 2 * d as u64, participants.len() as u64);
            meter.record_round(Link::EdgeCloud);

            // Survivor-renormalized aggregation (fault-free the denominator
            // is exactly m_edges); a fully failed round keeps w^(k).
            let agg_span = prof.start();
            let mut w_checkpoint = vec![0.0_f32; d];
            if reported.is_empty() {
                w_checkpoint.copy_from_slice(&w);
            } else {
                let m_reported: usize = reported.iter().map(|&i| part_counts[i]).sum();
                let weights: Vec<f64> = reported
                    .iter()
                    .map(|&i| part_counts[i] as f64 / m_reported as f64)
                    .collect();
                let models: Vec<&[f32]> = reported
                    .iter()
                    .map(|&i| outputs[i].w_final.as_slice())
                    .collect();
                let base_w = if cfg.opts.aggregator.needs_base() {
                    w.clone()
                } else {
                    Vec::new()
                };
                let mut agg_scratch: Vec<f32> = Vec::new();
                robust_reduce_into(
                    &cfg.opts.aggregator,
                    &models,
                    Some(&weights),
                    &base_w,
                    &mut agg_scratch,
                    &mut w,
                );
                let cps: Vec<&[f32]> = reported
                    .iter()
                    .map(|&i| {
                        outputs[i]
                            .checkpoint
                            .as_deref()
                            .expect("checkpoints captured")
                    })
                    .collect();
                robust_reduce_into(
                    &cfg.opts.aggregator,
                    &cps,
                    Some(&weights),
                    &base_w,
                    &mut agg_scratch,
                    &mut w_checkpoint,
                );
            }
            prof.record(tel, Phase::Aggregation, Some(k), None, agg_span);
            trace.record(|| Event::GlobalAggregation { round: k });

            // Phase 2 unchanged (scalar losses are cheap; no over-selection).
            let dual_span = prof.start();
            let mut u_rng = StreamRng::for_key(StreamKey::new(
                seed,
                Purpose::LossEstSampling,
                k as u64,
                u64::MAX,
            ));
            let u_set = sample_edges_uniform(n_edges, cfg.m_edges, &mut u_rng);
            // Outage + downlink-delivery filter for the estimate request;
            // the scalar uplink rides the reliable control channel.
            let live: Vec<usize> = u_set
                .iter()
                .copied()
                .filter(|&e| {
                    if fault.edge_out(k as u64, 0, e) {
                        record_edge_fault(&trace, tel, k, 0, e, FaultKind::EdgeOutage, 0);
                        false
                    } else {
                        true
                    }
                })
                .collect();
            meter.record_broadcast(Link::EdgeCloud, d as u64, live.len() as u64);
            let mut est: Vec<usize> = Vec::with_capacity(live.len());
            let mut retries = 0u64;
            let retry_span = prof.start();
            for &e in &live {
                let dv = fault.deliver(k as u64, 0, MsgChannel::Phase2Down, e);
                retries += u64::from(dv.attempts - 1);
                if let Some(kind) = delivery_fault_kind(dv.delivered, dv.attempts) {
                    record_edge_fault(&trace, tel, k, 0, e, kind, dv.attempts as usize);
                }
                if dv.delivered {
                    est.push(e);
                }
            }
            if retries > 0 {
                meter.record_broadcast(Link::EdgeCloud, d as u64, retries);
                prof.record(tel, Phase::FaultRetry, Some(k), None, retry_span);
            }
            meter.record_broadcast(Link::ClientEdge, d as u64, (est.len() * n0) as u64);
            let topo = problem.topology();
            let losses: Vec<f64> = cfg.opts.parallelism.map_ref(&est, |&e| {
                let mut total = 0.0_f64;
                for c in 0..n0 {
                    let client = topo.client_id(e, c);
                    let mut rng = StreamRng::for_key(StreamKey::new(
                        seed,
                        Purpose::LossEstSampling,
                        k as u64,
                        client as u64,
                    ));
                    total += estimate_loss(
                        &*problem.model,
                        problem.client_data(e, c),
                        &w_checkpoint,
                        cfg.loss_batch,
                        &mut rng,
                    );
                }
                total / n0 as f64
            });
            meter.record_gather(Link::ClientEdge, 1, (est.len() * n0) as u64);
            meter.record_round(Link::ClientEdge);
            meter.record_gather(Link::EdgeCloud, 1, est.len() as u64);

            let mut v = vec![0.0_f32; n_edges];
            let scale = n_edges as f64 / cfg.m_edges as f64;
            for (&e, &l) in est.iter().zip(&losses) {
                v[e] = (scale * l) as f32;
            }
            projected_ascent_step(
                &mut p,
                &v,
                cfg.eta_p * slots_per_round as f32,
                &problem.p_domain,
            );
            prof.record(tel, Phase::DualUpdate, Some(k), None, dual_span);
            trace.record(|| Event::WeightUpdate {
                round: k,
                p: p.clone(),
            });
            if fault.is_active() {
                let fnow = fault.stats();
                let fd = fnow.since(&faults_prev);
                // Retry backoff extends the synchronous round directly;
                // straggler slowdown slots are priced at the round's
                // critical-path (slowest kept edge) rate.
                simulated_seconds +=
                    fd.backoff_s + fd.straggler_slots * round_secs / slots_per_round as f64;
                tel.record(|| TelemetryEvent::FaultSummary {
                    round: k,
                    crashes: fd.crashes,
                    outages: fd.outages,
                    retries: fd.retries,
                    gave_up: fd.gave_up,
                    deadline_missed: fd.deadline_missed,
                    backoff_s: fd.backoff_s,
                    straggler_slots: fd.straggler_slots,
                });
                faults_prev = fnow;
            }
            let adv_now = fault.adversary_stats();
            if fault.has_adversary() {
                let ad = adv_now.since(&adv_prev);
                trace.record(|| Event::AdversaryRound {
                    round: k,
                    corrupted: ad.corrupted_updates,
                    attack: cfg.opts.fault.attack.as_str(),
                });
                tel.record_unsequenced(|| TelemetryEvent::Adversary {
                    round: k,
                    corrupted: ad.corrupted_updates,
                    attack: cfg.opts.fault.attack.as_str().to_string(),
                });
            }
            adv_prev = adv_now;

            finish_round(
                problem,
                &cfg.opts,
                &mut history,
                &mut avg_w,
                &mut avg_p,
                k,
                cfg.rounds,
                slots_per_round,
                meter.snapshot(),
                &w,
                p.clone(),
            );
            let mut section = ByteWriter::new();
            section.put_f64(simulated_seconds);
            section.put_u64(discarded as u64);
            ckpt.after_round(
                k,
                &w,
                &p,
                &avg_w,
                &avg_p,
                &history,
                meter.snapshot(),
                fault.stats(),
                vec![(OVERSELECT_SECTION.to_string(), section.into_bytes())],
            );
            prof.record(tel, Phase::Round, Some(k), None, round_span);
        }
        prof.emit_summary(tel);

        OverselectResult {
            run: RunResult {
                final_w: w,
                avg_w: avg_w.mean(),
                final_p: p.clone(),
                avg_p: avg_p.mean(),
                history,
                comm: meter.snapshot(),
                trace,
                faults: fault.stats(),
                quarantine: fault.adversary_stats(),
                churn: hm_simnet::ChurnStats::default(),
            },
            simulated_seconds,
            discarded,
        }
    }
}

impl Algorithm for OverselectMinimax {
    fn name(&self) -> &'static str {
        "HierMinimax+overselect"
    }

    fn run(&self, problem: &FederatedProblem, seed: u64) -> RunResult {
        self.run_timed(problem, seed).run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hm_data::scenarios::tiny_problem;
    use hm_simnet::Parallelism;

    fn cfg(m_over: usize, speeds: Vec<f64>, rounds: usize) -> OverselectConfig {
        OverselectConfig {
            rounds,
            tau1: 2,
            tau2: 2,
            m_edges: 2,
            m_over,
            seconds_per_slot: speeds,
            eta_w: 0.1,
            eta_p: 0.005,
            batch_size: 2,
            loss_batch: 8,
            dropout: 0.0,
            opts: RunOpts {
                eval_every: 0,
                parallelism: Parallelism::Rayon,
                trace: true,
                ..Default::default()
            },
        }
    }

    #[test]
    fn overselection_cuts_simulated_time() {
        let sc = tiny_problem(4, 2, 61);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        // Edge 3 is a 10x straggler. Freeze p (eta_p = 0) so the timing
        // comparison isolates the over-selection mechanism — with live
        // minimax weights, upweighting a lagging straggler is expected and
        // fights the timing gain.
        let speeds = vec![1.0, 1.0, 1.0, 10.0];
        let mut plain_cfg = cfg(2, speeds.clone(), 40);
        plain_cfg.eta_p = 0.0;
        let mut over_cfg = cfg(4, speeds, 40);
        over_cfg.eta_p = 0.0;
        let plain = OverselectMinimax::new(plain_cfg).run_timed(&fp, 5);
        let over = OverselectMinimax::new(over_cfg).run_timed(&fp, 5);
        assert!(
            over.simulated_seconds * 2.0 < plain.simulated_seconds,
            "over-selection did not cut time: {:.1} vs {:.1}",
            over.simulated_seconds,
            plain.simulated_seconds
        );
        assert_eq!(plain.discarded, 0);
        assert_eq!(over.discarded, 40 * 2);
    }

    #[test]
    fn kept_edges_are_the_fastest_sampled() {
        let sc = tiny_problem(4, 2, 62);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let speeds = vec![1.0, 2.0, 3.0, 4.0];
        let r = OverselectMinimax::new(cfg(4, speeds.clone(), 10)).run_timed(&fp, 7);
        for e in r.run.trace.events() {
            if let Event::Phase1EdgesSampled { edges, .. } = e {
                assert_eq!(edges.len(), 2);
                // Each kept edge must be at least as fast as the slowest
                // possible pair member: with all 4 sampled, the kept pair
                // is always the two fastest distinct draws, so edge 3
                // (the slowest) can appear only if drawn ≥ 3 times.
                let max_speed = edges.iter().map(|&i| speeds[i]).fold(0.0, f64::max);
                assert!(max_speed <= 4.0);
            }
        }
    }

    #[test]
    fn still_learns_and_p_remains_simplex() {
        let sc = tiny_problem(3, 2, 63);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let r = OverselectMinimax::new(cfg(3, vec![1.0, 5.0, 1.0], 250)).run_timed(&fp, 3);
        let e = crate::metrics::evaluate(&fp, &r.run.final_w, Parallelism::Rayon);
        assert!(e.average > 0.9, "reached only {:.3}", e.average);
        let sum: f32 = r.run.final_p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "m_over")]
    fn underprovisioned_overselection_rejected() {
        let mut c = cfg(1, vec![1.0; 4], 1);
        c.m_edges = 2;
        let _ = OverselectMinimax::new(c);
    }
}
