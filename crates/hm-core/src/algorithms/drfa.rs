//! DRFA (Deng, Kamani & Mahdavi, NeurIPS 2020) — the two-layer *minimax*
//! baseline with **multi-step** local updates.
//!
//! Per training round: clients sampled by `q` run `τ1` local SGD steps and
//! upload both the final model and a checkpoint captured at a uniformly
//! random step `t' ∈ [τ1]`; the cloud averages both. A second, uniform
//! client set evaluates the checkpoint model's loss, and the cloud applies
//! the importance-weighted ascent step `q ← Π_Δ(q + η_q τ1 v)`.
//!
//! The checkpoint/loss exchange (the checkpoint model re-broadcast to a
//! fresh uniform set) is metered in floats and messages but shares the
//! training round's single `ClientCloud` communication round, matching the
//! per-round O(1) communication-complexity accounting of the related-work
//! comparison (Table 1).
//!
//! HierMinimax with `τ2 = 1` and edges of one client degenerates to exactly
//! this method — asserted in the integration tests.

use super::flat_common::{client_dataset, q_to_edge_p, run_flat_clients};
use super::hier_common::multiplicities;
use super::{finish_round, Algorithm, IterateAverage, RunOpts, RunResult};
use crate::checkpoint::{emit_preamble, CheckpointCtx, ResumedRun};
use crate::history::History;
use crate::localsgd::estimate_loss;
use crate::problem::FederatedProblem;
use hm_data::rng::{Purpose, StreamKey, StreamRng};
use hm_optim::sgd::projected_ascent_step;
use hm_optim::ProjectionOp;
use hm_simnet::sampling::{sample_edges_uniform, sample_edges_weighted};
use hm_simnet::trace::Event;
use hm_simnet::{CommMeter, Link};
use hm_telemetry::{Phase, TelemetryEvent};
use hm_tensor::vecops;

/// Configuration of a DRFA run.
#[derive(Debug, Clone)]
pub struct DrfaConfig {
    /// Training rounds `K`.
    pub rounds: usize,
    /// Local SGD steps per round (`τ1`; the paper sets 2).
    pub tau1: usize,
    /// Participating clients per phase.
    pub m_clients: usize,
    /// Model learning rate.
    pub eta_w: f32,
    /// Mixture-weight learning rate (the update applies `η_q τ1`).
    pub eta_q: f32,
    /// Mini-batch size for local SGD.
    pub batch_size: usize,
    /// Mini-batch size for loss estimation (a larger batch lowers the
    /// variance σ_p² of the weight-gradient estimate).
    pub loss_batch: usize,
    /// Shared runner options.
    pub opts: RunOpts,
}

impl Default for DrfaConfig {
    fn default() -> Self {
        Self {
            rounds: 100,
            tau1: 2,
            m_clients: 4,
            eta_w: 0.05,
            eta_q: 0.05,
            batch_size: 4,
            loss_batch: 16,
            opts: RunOpts::default(),
        }
    }
}

/// The DRFA baseline.
#[derive(Debug, Clone)]
pub struct Drfa {
    cfg: DrfaConfig,
}

impl Drfa {
    /// Build a runner from a config.
    pub fn new(cfg: DrfaConfig) -> Self {
        assert!(cfg.rounds > 0 && cfg.tau1 > 0 && cfg.m_clients > 0 && cfg.batch_size > 0);
        Self { cfg }
    }
}

impl Algorithm for Drfa {
    fn name(&self) -> &'static str {
        "DRFA"
    }

    fn run(&self, problem: &FederatedProblem, seed: u64) -> RunResult {
        let cfg = &self.cfg;
        let n = problem.topology().total_clients();
        assert!(
            cfg.m_clients <= n,
            "m_clients {} exceeds {} clients",
            cfg.m_clients,
            n
        );
        let d = problem.num_params();
        let meter = CommMeter::new();
        let trace = cfg.opts.make_trace();
        let mut history = History::default();
        let mut avg_w = IterateAverage::new(d);
        let mut avg_p = IterateAverage::new(problem.num_edges());

        let mut w = problem
            .model
            .init_params(&mut StreamRng::for_key(StreamKey::new(
                seed,
                Purpose::Init,
                0,
                0,
            )));
        let mut q = vec![1.0 / n as f32; n];
        let q_domain = ProjectionOp::Simplex;

        let resumed = ResumedRun::from_opts(&cfg.opts, "DRFA", seed, cfg.rounds);
        let start_round = match &resumed {
            Some(rr) => {
                w.clone_from(&rr.w);
                q.clone_from(&rr.p);
                avg_w = rr.avg_w.clone();
                avg_p = rr.avg_p.clone();
                history = rr.history.clone();
                meter.restore(&rr.comm);
                rr.start_round
            }
            None => 0,
        };
        let mut comm_prev = meter.snapshot();

        let tel = &cfg.opts.telemetry;
        let run_timer = tel.timer();
        emit_preamble(
            tel,
            resumed.as_ref(),
            "DRFA",
            cfg.rounds,
            problem.num_edges(),
            d,
            seed,
        );
        let ckpt = CheckpointCtx::new(&cfg.opts, "DRFA", seed, cfg.rounds, true);

        let prof = &cfg.opts.profile;
        for k in start_round..cfg.rounds {
            tel.record(|| TelemetryEvent::RoundStart { round: k });
            let round_timer = tel.timer();
            let phase1_timer = tel.timer();
            let round_span = prof.start();
            let sampling_span = prof.start();
            // Sample clients by q and a checkpoint step t' ∈ [τ1].
            let mut e_rng =
                StreamRng::for_key(StreamKey::new(seed, Purpose::EdgeSampling, k as u64, 0));
            let q64: Vec<f64> = q.iter().map(|&x| f64::from(x).max(0.0)).collect();
            let sampled = sample_edges_weighted(&q64, cfg.m_clients, &mut e_rng);
            trace.record(|| Event::Phase1EdgesSampled {
                round: k,
                edges: sampled.clone(),
            });
            let (distinct, counts) = multiplicities(&sampled);

            let mut c_rng =
                StreamRng::for_key(StreamKey::new(seed, Purpose::Checkpoint, k as u64, 0));
            let t_prime = c_rng.below(cfg.tau1);
            trace.record(|| Event::CheckpointSampled {
                round: k,
                c1: t_prime,
                c2: 0,
            });
            // Two-layer method: "edges" are sampled client ids; the single
            // checkpoint coordinate t' maps onto c1.
            tel.record(|| TelemetryEvent::Phase1Sampled {
                round: k,
                edges: sampled.clone(),
                checkpoint: Some((t_prime, 0)),
            });
            prof.record(tel, Phase::Phase1Sampling, Some(k), None, sampling_span);

            // Round 1: broadcast w + t', run τ1 local steps, gather model
            // and checkpoint.
            meter.record_broadcast(Link::ClientCloud, d as u64 + 1, distinct.len() as u64);
            let sgd_span = prof.start();
            let results = run_flat_clients(
                problem,
                &w,
                &distinct,
                cfg.tau1,
                cfg.eta_w,
                cfg.batch_size,
                k,
                seed,
                cfg.opts.parallelism,
                Some(t_prime),
            );
            prof.record(tel, Phase::LocalSgdChain, Some(k), None, sgd_span);
            meter.record_gather(Link::ClientCloud, 2 * d as u64, distinct.len() as u64);
            meter.record_round(Link::ClientCloud);

            let agg_span = prof.start();
            let weights: Vec<f64> = counts
                .iter()
                .map(|&c| c as f64 / cfg.m_clients as f64)
                .collect();
            let models: Vec<&[f32]> = results.iter().map(|(m, _)| m.as_slice()).collect();
            vecops::weighted_average_into(&models, &weights, &mut w);
            let cps: Vec<&[f32]> = results
                .iter()
                .map(|(_, cp)| cp.as_deref().expect("drfa captures checkpoints"))
                .collect();
            let mut w_checkpoint = vec![0.0_f32; d];
            vecops::weighted_average_into(&cps, &weights, &mut w_checkpoint);
            prof.record(tel, Phase::Aggregation, Some(k), None, agg_span);
            trace.record(|| Event::GlobalAggregation { round: k });
            trace.record(|| Event::GlobalModel {
                round: k,
                w: w.clone(),
            });
            tel.record(|| TelemetryEvent::Phase1Done {
                round: k,
                elapsed_s: phase1_timer.elapsed_s(),
            });

            // Round 2: uniform set evaluates the checkpoint model.
            let phase2_timer = tel.timer();
            let dual_span = prof.start();
            let mut u_rng = StreamRng::for_key(StreamKey::new(
                seed,
                Purpose::LossEstSampling,
                k as u64,
                u64::MAX,
            ));
            let u_set = sample_edges_uniform(n, cfg.m_clients, &mut u_rng);
            trace.record(|| Event::Phase2EdgesSampled {
                round: k,
                edges: u_set.clone(),
            });
            meter.record_broadcast(Link::ClientCloud, d as u64, u_set.len() as u64);
            let losses: Vec<f64> = cfg.opts.parallelism.map_ref(&u_set, |&c| {
                let mut rng = StreamRng::for_key(StreamKey::new(
                    seed,
                    Purpose::LossEstSampling,
                    k as u64,
                    c as u64,
                ));
                estimate_loss(
                    &*problem.model,
                    client_dataset(problem, c),
                    &w_checkpoint,
                    cfg.loss_batch,
                    &mut rng,
                )
            });
            meter.record_gather(Link::ClientCloud, 1, u_set.len() as u64);

            let mut v = vec![0.0_f32; n];
            let scale = n as f64 / cfg.m_clients as f64;
            for (&c, &l) in u_set.iter().zip(&losses) {
                v[c] = (scale * l) as f32;
            }
            projected_ascent_step(&mut q, &v, cfg.eta_q * cfg.tau1 as f32, &q_domain);
            prof.record(tel, Phase::DualUpdate, Some(k), None, dual_span);
            let p_edge = q_to_edge_p(problem, &q);
            trace.record(|| Event::WeightUpdate {
                round: k,
                p: p_edge.clone(),
            });
            tel.record(|| TelemetryEvent::DualUpdate {
                round: k,
                edges: u_set.clone(),
                losses: losses.clone(),
                p: p_edge.clone(),
                elapsed_s: phase2_timer.elapsed_s(),
            });
            let comm_now = meter.snapshot();
            let slots_done = (k + 1) * cfg.tau1;
            tel.record(|| TelemetryEvent::RoundEnd {
                round: k,
                slots: slots_done,
                comm_delta: comm_now.since(&comm_prev),
                comm_total: comm_now,
                sim_s: tel.sim_seconds(&comm_now, slots_done, 1),
                elapsed_s: round_timer.elapsed_s(),
            });
            comm_prev = comm_now;
            prof.record(tel, Phase::Round, Some(k), None, round_span);

            finish_round(
                problem,
                &cfg.opts,
                &mut history,
                &mut avg_w,
                &mut avg_p,
                k,
                cfg.rounds,
                cfg.tau1,
                comm_now,
                &w,
                p_edge,
            );
            ckpt.after_round(
                k,
                &w,
                &q,
                &avg_w,
                &avg_p,
                &history,
                comm_now,
                Default::default(),
                vec![],
            );
        }

        let comm_final = meter.snapshot();
        let total_slots = cfg.rounds * cfg.tau1;
        prof.emit_summary(tel);
        tel.record(|| TelemetryEvent::RunEnd {
            rounds: cfg.rounds,
            slots: total_slots,
            comm_total: comm_final,
            sim_s: tel.sim_seconds(&comm_final, total_slots, 1),
            elapsed_s: run_timer.elapsed_s(),
        });
        tel.flush();

        let final_p = q_to_edge_p(problem, &q);
        RunResult {
            final_w: w,
            avg_w: avg_w.mean(),
            final_p,
            avg_p: avg_p.mean(),
            history,
            comm: comm_final,
            trace,
            faults: Default::default(),
            quarantine: Default::default(),
            churn: Default::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hm_data::scenarios::tiny_problem;
    use hm_simnet::Parallelism;

    fn quick_cfg(rounds: usize) -> DrfaConfig {
        DrfaConfig {
            rounds,
            tau1: 2,
            m_clients: 4,
            eta_w: 0.1,
            eta_q: 0.1,
            batch_size: 2,
            loss_batch: 4,
            opts: RunOpts {
                eval_every: 1,
                parallelism: Parallelism::Sequential,
                trace: false,
                ..Default::default()
            },
        }
    }

    #[test]
    fn one_cloud_round_per_training_round() {
        let sc = tiny_problem(3, 2, 1);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let r = Drfa::new(quick_cfg(5)).run(&fp, 42);
        assert_eq!(r.comm.cloud_rounds(), 5);
        assert_eq!(r.history.rounds.last().unwrap().slots_done, 10);
    }

    #[test]
    fn p_moves_off_uniform_and_stays_simplex() {
        let sc = tiny_problem(3, 2, 2);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let r = Drfa::new(quick_cfg(20)).run(&fp, 3);
        let sum: f32 = r.final_p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
        assert!(r.final_p.iter().any(|&x| (x - 1.0 / 3.0).abs() > 1e-3));
    }

    #[test]
    fn training_reduces_objective() {
        let sc = tiny_problem(3, 2, 3);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let w0 = vec![0.0; fp.num_params()];
        let p0 = fp.initial_p();
        let before = fp.objective(&w0, &p0);
        let mut cfg = quick_cfg(40);
        cfg.m_clients = 6;
        let r = Drfa::new(cfg).run(&fp, 5);
        assert!(fp.objective(&r.final_w, &p0) < before * 0.8);
    }

    #[test]
    fn deterministic_across_parallelism() {
        let sc = tiny_problem(3, 2, 4);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let mut cfg = quick_cfg(4);
        let a = Drfa::new(cfg.clone()).run(&fp, 7);
        cfg.opts.parallelism = Parallelism::Rayon;
        let b = Drfa::new(cfg).run(&fp, 7);
        assert_eq!(a.final_w, b.final_w);
        assert_eq!(a.final_p, b.final_p);
    }
}
