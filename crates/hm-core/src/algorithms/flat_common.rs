//! Shared machinery for the two-layer (client ↔ cloud) baselines: FedAvg,
//! Stochastic-AFL, and DRFA. These methods ignore the edge servers — every
//! exchange is metered on the `ClientCloud` link — and index clients flat
//! (`0..N`), while fairness continues to be *measured* per edge area.

use crate::localsgd::local_sgd;
use crate::problem::FederatedProblem;
use hm_data::rng::{Purpose, StreamKey, StreamRng};
use hm_data::Dataset;
use hm_simnet::Parallelism;

/// A flat client's training shard.
pub(crate) fn client_dataset(problem: &FederatedProblem, client: usize) -> &Dataset {
    let topo = problem.topology();
    let edge = topo.edge_of(client);
    let idx = client - edge * topo.clients_per_edge();
    problem.client_data(edge, idx)
}

/// Run `steps` local SGD steps at each of the given (distinct) clients,
/// starting from the shared broadcast model `w`, optionally capturing the
/// iterate after `checkpoint_after` steps. Results are in input order.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_flat_clients(
    problem: &FederatedProblem,
    w: &[f32],
    clients: &[usize],
    steps: usize,
    eta_w: f32,
    batch_size: usize,
    round: usize,
    seed: u64,
    par: Parallelism,
    checkpoint_after: Option<usize>,
) -> Vec<(Vec<f32>, Option<Vec<f32>>)> {
    par.map_ref(clients, |&client| {
        let mut rng = StreamRng::for_key(StreamKey::new(
            seed,
            Purpose::Batch,
            round as u64,
            client as u64,
        ));
        local_sgd(
            &*problem.model,
            client_dataset(problem, client),
            w,
            steps,
            eta_w,
            batch_size,
            &problem.w_domain,
            &mut rng,
            checkpoint_after,
        )
    })
}

/// Collapse a per-client weight vector `q` into a per-edge vector (summing
/// within each edge area) for history recording and cross-method
/// comparison.
pub(crate) fn q_to_edge_p(problem: &FederatedProblem, q: &[f32]) -> Vec<f32> {
    let topo = problem.topology();
    assert_eq!(
        q.len(),
        topo.total_clients(),
        "client weight length mismatch"
    );
    let mut p = vec![0.0_f32; topo.num_edges()];
    for (c, &qc) in q.iter().enumerate() {
        p[topo.edge_of(c)] += qc;
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use hm_data::scenarios::tiny_problem;

    #[test]
    fn client_dataset_addresses_by_edge() {
        let sc = tiny_problem(3, 2, 1);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        // Client 3 is edge 1, index 1.
        let a = client_dataset(&fp, 3);
        let b = fp.client_data(1, 1);
        assert_eq!(a.x.max_abs_diff(&b.x), 0.0);
    }

    #[test]
    fn q_to_edge_p_sums_within_edges() {
        let sc = tiny_problem(2, 3, 1);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let q = vec![0.1, 0.2, 0.3, 0.05, 0.15, 0.2];
        let p = q_to_edge_p(&fp, &q);
        assert!((p[0] - 0.6).abs() < 1e-6);
        assert!((p[1] - 0.4).abs() < 1e-6);
    }

    #[test]
    fn flat_clients_deterministic_across_parallelism() {
        let sc = tiny_problem(2, 2, 5);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let w = vec![0.0; fp.num_params()];
        let a = run_flat_clients(
            &fp,
            &w,
            &[0, 1, 2, 3],
            3,
            0.1,
            2,
            0,
            9,
            Parallelism::Sequential,
            Some(1),
        );
        let b = run_flat_clients(
            &fp,
            &w,
            &[0, 1, 2, 3],
            3,
            0.1,
            2,
            0,
            9,
            Parallelism::Rayon,
            Some(1),
        );
        assert_eq!(a, b);
        assert!(a.iter().all(|(_, cp)| cp.is_some()));
    }
}
