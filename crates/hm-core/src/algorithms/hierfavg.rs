//! HierFAVG (Liu et al., ICC 2020) — the three-layer *minimization*
//! baseline: the same client-edge-cloud update structure as HierMinimax's
//! Phase 1 (`τ2` client-edge aggregations of `τ1` local steps), but solving
//! problem (1) — no edge weights, no Phase 2. Participating edges are
//! sampled uniformly, and the cloud aggregation weights each edge by its
//! training-data volume (the `q_n ∝ data` convention of eq. 1); client
//! shards within an edge are equal-sized in every scenario here, so the
//! client-edge aggregation remains a plain average.

use super::churnctl::ChurnCtl;
use super::hier_common::{robust_reduce_into, run_edge_blocks, EdgeBlockParams, QuarantineCtl};
use super::hierminimax::{delivery_fault_kind, record_edge_fault};
use super::{finish_round, Algorithm, IterateAverage, RunError, RunOpts, RunResult};
use crate::checkpoint::{emit_preamble, CheckpointCtx, ResumedRun};
use crate::history::History;
use crate::problem::FederatedProblem;
use hm_data::rng::{Purpose, StreamKey, StreamRng};
use hm_simnet::sampling::sample_edges_uniform;
use hm_simnet::trace::Event;
use hm_simnet::{CommMeter, FaultInjector, FaultKind, FaultStats, Link, MsgChannel, Quantizer};
use hm_telemetry::{Phase, TelemetryEvent};

/// Configuration of a HierFAVG run.
#[derive(Debug, Clone)]
pub struct HierFavgConfig {
    /// Training rounds `K`.
    pub rounds: usize,
    /// Local SGD steps per client-edge aggregation (`τ1`).
    pub tau1: usize,
    /// Client-edge aggregations per round (`τ2`).
    pub tau2: usize,
    /// Participating edges per round (uniformly sampled).
    pub m_edges: usize,
    /// Model learning rate.
    pub eta_w: f32,
    /// Mini-batch size for local SGD.
    pub batch_size: usize,
    /// Uplink codec for model uploads (`Quantizer::Exact` = the original
    /// HierFAVG; a stochastic codec gives Hier-Local-QSGD).
    pub quantizer: Quantizer,
    /// Per-block client dropout probability (crash/straggler simulation;
    /// `0.0` = the paper's failure-free protocol).
    pub dropout: f32,
    /// Shared runner options.
    pub opts: RunOpts,
}

impl Default for HierFavgConfig {
    fn default() -> Self {
        Self {
            rounds: 50,
            tau1: 2,
            tau2: 2,
            m_edges: 2,
            eta_w: 0.05,
            batch_size: 4,
            quantizer: Quantizer::Exact,
            dropout: 0.0,
            opts: RunOpts::default(),
        }
    }
}

/// The HierFAVG baseline.
#[derive(Debug, Clone)]
pub struct HierFavg {
    cfg: HierFavgConfig,
}

impl HierFavg {
    /// Build a runner from a config.
    pub fn new(cfg: HierFavgConfig) -> Self {
        assert!(cfg.rounds > 0 && cfg.tau1 > 0 && cfg.tau2 > 0);
        assert!(cfg.m_edges > 0 && cfg.batch_size > 0);
        Self { cfg }
    }
}

impl Algorithm for HierFavg {
    fn name(&self) -> &'static str {
        "HierFAVG"
    }

    fn run(&self, problem: &FederatedProblem, seed: u64) -> RunResult {
        self.try_run(problem, seed).unwrap_or_else(|e| panic!("{e}"))
    }

    fn try_run(&self, problem: &FederatedProblem, seed: u64) -> Result<RunResult, RunError> {
        let cfg = &self.cfg;
        let n_edges = problem.num_edges();
        assert!(
            cfg.m_edges <= n_edges,
            "m_edges {} exceeds {} edges",
            cfg.m_edges,
            n_edges
        );
        let d = problem.num_params();
        let meter = CommMeter::new();
        let trace = cfg.opts.make_trace();
        let mut history = History::default();
        let mut avg_w = IterateAverage::new(d);
        let mut avg_p = IterateAverage::new(n_edges);
        let uniform_p = problem.initial_p();

        let mut w = problem
            .model
            .init_params(&mut StreamRng::for_key(StreamKey::new(
                seed,
                Purpose::Init,
                0,
                0,
            )));
        let fault = FaultInjector::new(seed, cfg.opts.fault.clone().with_dropout(cfg.dropout));
        let mut faults_prev = FaultStats::default();
        let mut adv_prev = hm_simnet::QuarantineStats::default();
        let mut quarantine = QuarantineCtl::new(
            cfg.opts.quarantine_z,
            cfg.opts.quarantine_window,
            problem.topology().total_clients(),
        );
        // Membership churn (inert at the default all-zero plan; the
        // minimization baseline has no fairness weights to re-project).
        let mut churn = ChurnCtl::new(problem, &cfg.opts.churn, seed);
        let churn_active = churn.active();
        let mut stale_rounds: u64 = 0;

        let resumed = ResumedRun::from_opts(&cfg.opts, "HierFAVG", seed, cfg.rounds);
        let start_round = match &resumed {
            Some(rr) => {
                w.clone_from(&rr.w);
                avg_w = rr.avg_w.clone();
                avg_p = rr.avg_p.clone();
                history = rr.history.clone();
                meter.restore(&rr.comm);
                fault.restore(&rr.faults);
                faults_prev = rr.faults;
                if let Some(bytes) = rr.snap.extra(crate::checkpoint::QUARANTINE_SECTION) {
                    let (until, adv) = crate::checkpoint::decode_quarantine(bytes)
                        .unwrap_or_else(|e| panic!("cannot resume: {e}"));
                    quarantine.restore(until);
                    fault.restore_adversary(&adv);
                    adv_prev = adv;
                }
                if churn_active {
                    let bytes = rr
                        .snap
                        .extra(crate::checkpoint::CHURN_SECTION)
                        .unwrap_or_else(|| {
                            panic!("cannot resume a churn run: snapshot has no churn section")
                        });
                    stale_rounds = churn.restore(problem, bytes);
                }
                rr.start_round
            }
            None => 0,
        };
        let mut comm_prev = meter.snapshot();

        let tel = &cfg.opts.telemetry;
        let run_timer = tel.timer();
        emit_preamble(
            tel,
            resumed.as_ref(),
            "HierFAVG",
            cfg.rounds,
            n_edges,
            d,
            seed,
        );
        cfg.opts.emit_aggregator_summary();
        let ckpt = CheckpointCtx::new(&cfg.opts, "HierFAVG", seed, cfg.rounds, true);

        let prof = &cfg.opts.profile;
        for k in start_round..cfg.rounds {
            tel.record(|| TelemetryEvent::RoundStart { round: k });
            let round_timer = tel.timer();
            let phase1_timer = tel.timer();
            let round_span = prof.start();
            // Membership churn resolves at the round boundary, before any
            // sampling draw (no fairness weights here — `&mut []`).
            churn.begin_round(problem, k, &mut [], &mut quarantine, &trace, tel);
            let sampling_span = prof.start();
            let mut e_rng =
                StreamRng::for_key(StreamKey::new(seed, Purpose::EdgeSampling, k as u64, 0));
            // Under churn the uniform draw covers surviving edges only
            // (a dead edge can never report), with m clamped to their
            // count.
            let sampled = if churn_active {
                let up = churn.up_edges();
                let m = cfg.m_edges.min(up.len());
                sample_edges_uniform(up.len(), m, &mut e_rng)
                    .into_iter()
                    .map(|i| up[i])
                    .collect()
            } else {
                sample_edges_uniform(n_edges, cfg.m_edges, &mut e_rng)
            };
            trace.record(|| Event::Phase1EdgesSampled {
                round: k,
                edges: sampled.clone(),
            });
            tel.record(|| TelemetryEvent::Phase1Sampled {
                round: k,
                edges: sampled.clone(),
                checkpoint: None,
            });
            prof.record(tel, Phase::Phase1Sampling, Some(k), None, sampling_span);

            // Outage filter + downlink deliveries mirror HierMinimax's
            // Phase 1: an out edge never hears the broadcast, a lost
            // downlink (after metered retries) sidelines its edge.
            let mut active: Vec<usize> = Vec::with_capacity(sampled.len());
            for &e in &sampled {
                if fault.edge_out(k as u64, 0, e) {
                    record_edge_fault(&trace, tel, k, 0, e, FaultKind::EdgeOutage, 0);
                } else {
                    active.push(e);
                }
            }
            meter.record_broadcast(Link::EdgeCloud, d as u64, active.len() as u64);
            trace.record(|| Event::CloudBroadcast {
                round: k,
                recipients: active.clone(),
            });
            let mut participants: Vec<usize> = Vec::with_capacity(active.len());
            let mut retries = 0u64;
            let retry_span = prof.start();
            for &e in &active {
                let dv = fault.deliver(k as u64, 0, MsgChannel::Phase1Down, e);
                retries += u64::from(dv.attempts - 1);
                if let Some(kind) = delivery_fault_kind(dv.delivered, dv.attempts) {
                    record_edge_fault(&trace, tel, k, 0, e, kind, dv.attempts as usize);
                }
                if dv.delivered {
                    participants.push(e);
                }
            }
            // Retried downlinks, metered once for the whole loop (every
            // retry carries the same payload, so the totals are exact).
            if retries > 0 {
                meter.record_broadcast(Link::EdgeCloud, d as u64, retries);
                prof.record(tel, Phase::FaultRetry, Some(k), None, retry_span);
            }

            quarantine.begin_round();
            let outputs = run_edge_blocks(EdgeBlockParams {
                problem,
                w_start: &w,
                edges: &participants,
                tau1: cfg.tau1,
                tau2: cfg.tau2,
                eta_w: cfg.eta_w,
                batch_size: cfg.batch_size,
                checkpoint: None,
                quantizer: cfg.quantizer,
                fault: &fault,
                level: 0,
                record_rounds: true,
                round: k,
                seed,
                meter: &meter,
                par: cfg.opts.parallelism,
                engine: cfg.opts.engine,
                trace: &trace,
                telemetry: tel,
                profile: prof,
                aggregator: cfg.opts.aggregator,
                quarantined: quarantine.exclusions(),
                track_norms: quarantine.active(),
                roster: churn.roster(),
            });
            quarantine.observe(problem, churn.roster(), &outputs);

            let mut outputs = outputs;
            if cfg.quantizer != Quantizer::Exact {
                // Edge→cloud codec: deltas against the round's broadcast
                // model, which the cloud already holds.
                for o in outputs.iter_mut() {
                    let mut qrng = StreamRng::for_key(StreamKey::new(
                        seed,
                        Purpose::Quantize,
                        k as u64,
                        1_000_000 + o.edge as u64,
                    ));
                    super::hier_common::quantize_delta(
                        &cfg.quantizer,
                        &w,
                        &mut o.w_final,
                        &mut qrng,
                    );
                }
            }
            // Uplink deliveries: every attempt transmits (first attempts
            // in the base gather, retries here); only delivered reports
            // join the aggregation.
            let wire_up = cfg.quantizer.wire_floats(d);
            let mut reported: Vec<usize> = Vec::with_capacity(outputs.len());
            let mut retries = 0u64;
            let retry_span = prof.start();
            for (i, o) in outputs.iter().enumerate() {
                let dv = fault.deliver(k as u64, 0, MsgChannel::Phase1Up, o.edge);
                retries += u64::from(dv.attempts - 1);
                if let Some(kind) = delivery_fault_kind(dv.delivered, dv.attempts) {
                    record_edge_fault(&trace, tel, k, 0, o.edge, kind, dv.attempts as usize);
                }
                if dv.delivered {
                    reported.push(i);
                }
            }
            if retries > 0 {
                meter.record_gather(Link::EdgeCloud, wire_up, retries);
                prof.record(tel, Phase::FaultRetry, Some(k), None, retry_span);
            }
            meter.record_gather(Link::EdgeCloud, wire_up, outputs.len() as u64);
            meter.record_round(Link::EdgeCloud);

            // Stale-round accounting (see HierMinimax): `max_stale_rounds`
            // caps the tolerated all-failed streak.
            if reported.is_empty() {
                stale_rounds += 1;
                if cfg.opts.max_stale_rounds > 0 && stale_rounds > cfg.opts.max_stale_rounds as u64
                {
                    return Err(RunError::StaleRoundsExceeded {
                        round: k,
                        consecutive: stale_rounds as usize,
                        limit: cfg.opts.max_stale_rounds,
                    });
                }
            } else {
                stale_rounds = 0;
            }

            // Cloud aggregation weighted by edge data volume (q ∝ data),
            // renormalized over the reports that arrived; a fully-failed
            // round keeps w^(k) bit-identically. Under churn, an edge's
            // volume is its *current* members' shards (arrivals counted,
            // leavers not), so re-homed data keeps its aggregation pull.
            let agg_span = prof.start();
            let sizes: Vec<f64> = reported
                .iter()
                .map(|&i| {
                    let e = outputs[i].edge;
                    if churn_active {
                        churn
                            .members_of(e)
                            .iter()
                            .map(|&gid| churn.data(problem, gid).len())
                            .sum::<usize>() as f64
                    } else {
                        problem.scenario.edges[e]
                            .client_train
                            .iter()
                            .map(|d| d.len())
                            .sum::<usize>() as f64
                    }
                })
                .collect();
            let total: f64 = sizes.iter().sum();
            if !reported.is_empty() && total > 0.0 {
                let weights: Vec<f64> = sizes.iter().map(|s| s / total).collect();
                let finals: Vec<&[f32]> = reported
                    .iter()
                    .map(|&i| outputs[i].w_final.as_slice())
                    .collect();
                let base_w = if cfg.opts.aggregator.needs_base() {
                    w.clone()
                } else {
                    Vec::new()
                };
                let mut agg_scratch: Vec<f32> = Vec::new();
                robust_reduce_into(
                    &cfg.opts.aggregator,
                    &finals,
                    Some(&weights),
                    &base_w,
                    &mut agg_scratch,
                    &mut w,
                );
            }
            prof.record(tel, Phase::Aggregation, Some(k), None, agg_span);
            trace.record(|| Event::GlobalAggregation { round: k });
            trace.record(|| Event::GlobalModel {
                round: k,
                w: w.clone(),
            });
            tel.record(|| TelemetryEvent::Phase1Done {
                round: k,
                elapsed_s: phase1_timer.elapsed_s(),
            });
            let fstats = fault.stats();
            if fault.is_active() {
                let fd = fstats.since(&faults_prev);
                tel.record(|| TelemetryEvent::FaultSummary {
                    round: k,
                    crashes: fd.crashes,
                    outages: fd.outages,
                    retries: fd.retries,
                    gave_up: fd.gave_up,
                    deadline_missed: fd.deadline_missed,
                    backoff_s: fd.backoff_s,
                    straggler_slots: fd.straggler_slots,
                });
            }
            faults_prev = fstats;
            let adv_now = fault.adversary_stats();
            if fault.has_adversary() {
                let ad = adv_now.since(&adv_prev);
                trace.record(|| Event::AdversaryRound {
                    round: k,
                    corrupted: ad.corrupted_updates,
                    attack: cfg.opts.fault.attack.as_str(),
                });
                tel.record_unsequenced(|| TelemetryEvent::Adversary {
                    round: k,
                    corrupted: ad.corrupted_updates,
                    attack: cfg.opts.fault.attack.as_str().to_string(),
                });
            }
            quarantine.end_round(k, &fault, tel);
            adv_prev = adv_now;
            let comm_now = meter.snapshot();
            trace.record(|| Event::RoundComm {
                round: k,
                delta: comm_now.since(&comm_prev),
            });
            let slots_done = (k + 1) * cfg.tau1 * cfg.tau2;
            tel.record(|| TelemetryEvent::RoundEnd {
                round: k,
                slots: slots_done,
                comm_delta: comm_now.since(&comm_prev),
                comm_total: comm_now,
                sim_s: tel.sim_seconds(&comm_now, slots_done, cfg.m_edges.max(1))
                    + tel.fault_seconds(fstats.straggler_slots, fstats.backoff_s),
                elapsed_s: round_timer.elapsed_s(),
            });
            comm_prev = comm_now;
            prof.record(tel, Phase::Round, Some(k), None, round_span);

            finish_round(
                problem,
                &cfg.opts,
                &mut history,
                &mut avg_w,
                &mut avg_p,
                k,
                cfg.rounds,
                cfg.tau1 * cfg.tau2,
                comm_now,
                &w,
                uniform_p.clone(),
            );
            ckpt.after_round(
                k,
                &w,
                &uniform_p,
                &avg_w,
                &avg_p,
                &history,
                comm_now,
                fstats,
                {
                    let mut extra = Vec::new();
                    if quarantine.active() || fault.has_adversary() {
                        extra.push((
                            crate::checkpoint::QUARANTINE_SECTION.to_string(),
                            // Read the counters fresh: `end_round` has added
                            // this round's quarantine sentences since `adv_now`
                            // was captured for the telemetry delta.
                            crate::checkpoint::encode_quarantine(
                                quarantine.state(),
                                &fault.adversary_stats(),
                            ),
                        ));
                    }
                    if churn_active {
                        extra.push((
                            crate::checkpoint::CHURN_SECTION.to_string(),
                            churn.checkpoint_bytes(stale_rounds),
                        ));
                    }
                    extra
                },
            );
        }

        let comm_final = meter.snapshot();
        let faults_final = fault.stats();
        let total_slots = cfg.rounds * cfg.tau1 * cfg.tau2;
        prof.emit_summary(tel);
        tel.record(|| TelemetryEvent::RunEnd {
            rounds: cfg.rounds,
            slots: total_slots,
            comm_total: comm_final,
            sim_s: tel.sim_seconds(&comm_final, total_slots, cfg.m_edges.max(1))
                + tel.fault_seconds(faults_final.straggler_slots, faults_final.backoff_s),
            elapsed_s: run_timer.elapsed_s(),
        });
        tel.flush();

        Ok(RunResult {
            final_w: w,
            avg_w: avg_w.mean(),
            final_p: uniform_p.clone(),
            avg_p: avg_p.mean(),
            history,
            comm: comm_final,
            trace,
            faults: faults_final,
            quarantine: fault.adversary_stats(),
            churn: churn.stats(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hm_data::scenarios::tiny_problem;
    use hm_simnet::Parallelism;

    fn quick_cfg(rounds: usize) -> HierFavgConfig {
        HierFavgConfig {
            rounds,
            tau1: 2,
            tau2: 2,
            m_edges: 2,
            eta_w: 0.1,
            batch_size: 2,
            quantizer: hm_simnet::Quantizer::Exact,
            dropout: 0.0,
            opts: RunOpts {
                eval_every: 1,
                parallelism: Parallelism::Sequential,
                trace: false,
                ..Default::default()
            },
        }
    }

    #[test]
    fn one_cloud_round_per_training_round() {
        let sc = tiny_problem(3, 2, 1);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let r = HierFavg::new(quick_cfg(5)).run(&fp, 42);
        assert_eq!(r.comm.cloud_rounds(), 5);
        // τ2 client-edge rounds per training round.
        assert_eq!(r.comm.rounds(hm_simnet::Link::ClientEdge), 10);
    }

    #[test]
    fn p_stays_uniform() {
        let sc = tiny_problem(4, 2, 2);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let r = HierFavg::new(quick_cfg(3)).run(&fp, 1);
        assert_eq!(r.final_p, vec![0.25; 4]);
        for rec in &r.history.rounds {
            assert_eq!(rec.p, vec![0.25; 4]);
        }
    }

    #[test]
    fn training_reduces_objective() {
        let sc = tiny_problem(3, 2, 3);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let w0 = vec![0.0; fp.num_params()];
        let p0 = fp.initial_p();
        let before = fp.objective(&w0, &p0);
        let mut cfg = quick_cfg(30);
        cfg.m_edges = 3;
        let r = HierFavg::new(cfg).run(&fp, 5);
        assert!(fp.objective(&r.final_w, &p0) < before * 0.8);
    }

    #[test]
    fn deterministic_across_parallelism() {
        let sc = tiny_problem(3, 2, 4);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let mut cfg = quick_cfg(3);
        let a = HierFavg::new(cfg.clone()).run(&fp, 7);
        cfg.opts.parallelism = Parallelism::Rayon;
        let b = HierFavg::new(cfg).run(&fp, 7);
        assert_eq!(a.final_w, b.final_w);
    }
}
