//! FedProx (Li et al., MLSys 2020) — the heterogeneity-robust two-layer
//! *minimization* extension baseline: FedAvg with a proximal term
//! `μ/2 ‖w − w^(k)‖²` added to each client's local objective, which bounds
//! client drift during multi-step local updates. Included because it is
//! the standard non-fairness answer to heterogeneity, making the
//! comparison triangle complete: drift control (FedProx) vs fairness soft
//! reweighting (q-FedAvg) vs minimax (HierMinimax).

use super::flat_common::{client_dataset, q_to_edge_p};
use super::{finish_round, Algorithm, IterateAverage, RunOpts, RunResult};
use crate::checkpoint::{CheckpointCtx, ResumedRun};
use crate::history::History;
use crate::localsgd::local_sgd_prox;
use crate::problem::FederatedProblem;
use hm_data::rng::{Purpose, StreamKey, StreamRng};
use hm_simnet::sampling::sample_edges_uniform;
use hm_simnet::trace::Event;
use hm_simnet::{CommMeter, Link};
use hm_telemetry::Phase;
use hm_tensor::vecops;

/// Configuration of a FedProx run.
#[derive(Debug, Clone)]
pub struct FedProxConfig {
    /// Training rounds.
    pub rounds: usize,
    /// Local SGD steps per round.
    pub tau1: usize,
    /// Participating clients per round (uniform sampling).
    pub m_clients: usize,
    /// Proximal coefficient `μ ≥ 0` (`0` recovers FedAvg with uniform
    /// aggregation).
    pub mu: f32,
    /// Model learning rate.
    pub eta_w: f32,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Shared runner options.
    pub opts: RunOpts,
}

impl Default for FedProxConfig {
    fn default() -> Self {
        Self {
            rounds: 100,
            tau1: 2,
            m_clients: 4,
            mu: 0.1,
            eta_w: 0.05,
            batch_size: 4,
            opts: RunOpts::default(),
        }
    }
}

/// The FedProx extension baseline.
#[derive(Debug, Clone)]
pub struct FedProx {
    cfg: FedProxConfig,
}

impl FedProx {
    /// Build a runner from a config.
    ///
    /// # Panics
    /// Panics on degenerate configs or negative `μ`.
    pub fn new(cfg: FedProxConfig) -> Self {
        assert!(cfg.rounds > 0 && cfg.tau1 > 0 && cfg.m_clients > 0 && cfg.batch_size > 0);
        assert!(cfg.mu >= 0.0, "mu must be non-negative");
        Self { cfg }
    }
}

impl Algorithm for FedProx {
    fn name(&self) -> &'static str {
        "FedProx"
    }

    fn run(&self, problem: &FederatedProblem, seed: u64) -> RunResult {
        let cfg = &self.cfg;
        let n = problem.topology().total_clients();
        assert!(
            cfg.m_clients <= n,
            "m_clients {} exceeds {} clients",
            cfg.m_clients,
            n
        );
        let d = problem.num_params();
        let meter = CommMeter::new();
        let trace = cfg.opts.make_trace();
        let mut history = History::default();
        let mut avg_w = IterateAverage::new(d);
        let mut avg_p = IterateAverage::new(problem.num_edges());
        let uniform_p = problem.initial_p();

        let mut w = problem
            .model
            .init_params(&mut StreamRng::for_key(StreamKey::new(
                seed,
                Purpose::Init,
                0,
                0,
            )));

        let resumed = ResumedRun::from_opts(&cfg.opts, "FedProx", seed, cfg.rounds);
        let start_round = match &resumed {
            Some(rr) => {
                w.clone_from(&rr.w);
                avg_w = rr.avg_w.clone();
                avg_p = rr.avg_p.clone();
                history = rr.history.clone();
                meter.restore(&rr.comm);
                rr.start_round
            }
            None => 0,
        };
        // FedProx emits no telemetry, so checkpoint events are suppressed.
        let ckpt = CheckpointCtx::new(&cfg.opts, "FedProx", seed, cfg.rounds, false);
        let prof = &cfg.opts.profile;
        let tel = &cfg.opts.telemetry;

        for k in start_round..cfg.rounds {
            let round_span = prof.start();
            let sampling_span = prof.start();
            let mut s_rng =
                StreamRng::for_key(StreamKey::new(seed, Purpose::EdgeSampling, k as u64, 0));
            let sampled = sample_edges_uniform(n, cfg.m_clients, &mut s_rng);
            trace.record(|| Event::Phase1EdgesSampled {
                round: k,
                edges: sampled.clone(),
            });
            prof.record(tel, Phase::Phase1Sampling, Some(k), None, sampling_span);

            meter.record_broadcast(Link::ClientCloud, d as u64, sampled.len() as u64);
            let sgd_span = prof.start();
            let results: Vec<Vec<f32>> = cfg.opts.parallelism.map_ref(&sampled, |&client| {
                let mut rng = StreamRng::for_key(StreamKey::new(
                    seed,
                    Purpose::Batch,
                    k as u64,
                    client as u64,
                ));
                local_sgd_prox(
                    &*problem.model,
                    client_dataset(problem, client),
                    &w,
                    cfg.tau1,
                    cfg.eta_w,
                    cfg.batch_size,
                    cfg.mu,
                    &problem.w_domain,
                    &mut rng,
                )
            });
            prof.record(tel, Phase::LocalSgdChain, Some(k), None, sgd_span);
            meter.record_gather(Link::ClientCloud, d as u64, sampled.len() as u64);
            meter.record_round(Link::ClientCloud);

            let agg_span = prof.start();
            let models: Vec<&[f32]> = results.iter().map(|m| m.as_slice()).collect();
            vecops::average_into(&models, &mut w);
            prof.record(tel, Phase::Aggregation, Some(k), None, agg_span);
            trace.record(|| Event::GlobalAggregation { round: k });

            finish_round(
                problem,
                &cfg.opts,
                &mut history,
                &mut avg_w,
                &mut avg_p,
                k,
                cfg.rounds,
                cfg.tau1,
                meter.snapshot(),
                &w,
                uniform_p.clone(),
            );
            ckpt.after_round(
                k,
                &w,
                &uniform_p,
                &avg_w,
                &avg_p,
                &history,
                meter.snapshot(),
                Default::default(),
                vec![],
            );
            prof.record(tel, Phase::Round, Some(k), None, round_span);
        }
        prof.emit_summary(tel);

        let final_p = q_to_edge_p(problem, &vec![1.0 / n as f32; n]);
        RunResult {
            final_w: w,
            avg_w: avg_w.mean(),
            final_p,
            avg_p: avg_p.mean(),
            history,
            comm: meter.snapshot(),
            trace,
            faults: Default::default(),
            quarantine: Default::default(),
            churn: Default::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hm_data::scenarios::tiny_problem;
    use hm_simnet::Parallelism;

    fn quick_cfg(rounds: usize, mu: f32) -> FedProxConfig {
        FedProxConfig {
            rounds,
            tau1: 4,
            m_clients: 4,
            mu,
            eta_w: 0.1,
            batch_size: 2,
            opts: RunOpts {
                eval_every: 0,
                parallelism: Parallelism::Sequential,
                trace: false,
                ..Default::default()
            },
        }
    }

    #[test]
    fn runs_and_learns() {
        let sc = tiny_problem(3, 2, 85);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let w0 = vec![0.0; fp.num_params()];
        let p0 = fp.initial_p();
        let before = fp.objective(&w0, &p0);
        let mut cfg = quick_cfg(120, 0.1);
        cfg.m_clients = 6;
        let r = FedProx::new(cfg).run(&fp, 3);
        assert!(fp.objective(&r.final_w, &p0) < before * 0.8);
    }

    #[test]
    fn one_cloud_round_per_training_round() {
        let sc = tiny_problem(3, 2, 86);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let r = FedProx::new(quick_cfg(5, 0.1)).run(&fp, 1);
        assert_eq!(r.comm.cloud_rounds(), 5);
        assert_eq!(r.history.rounds.last().unwrap().slots_done, 20);
    }

    #[test]
    fn deterministic_across_parallelism() {
        let sc = tiny_problem(3, 2, 87);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let mut cfg = quick_cfg(4, 0.5);
        let a = FedProx::new(cfg.clone()).run(&fp, 7);
        cfg.opts.parallelism = Parallelism::Rayon;
        let b = FedProx::new(cfg).run(&fp, 7);
        assert_eq!(a.final_w, b.final_w);
    }

    #[test]
    fn mu_reduces_round_update_magnitude() {
        // The proximal term tethers clients to the broadcast model, so the
        // aggregated per-round update shrinks with mu.
        let sc = tiny_problem(3, 2, 88);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let first_step = |mu: f32| -> f64 {
            let r = FedProx::new(quick_cfg(1, mu)).run(&fp, 5);
            // Initial model is all zeros for logistic, so ||w1|| is the
            // update magnitude.
            hm_tensor::vecops::norm2(&r.final_w)
        };
        let free = first_step(0.0);
        let tethered = first_step(5.0);
        assert!(
            tethered < free,
            "mu did not shrink the update: {tethered} vs {free}"
        );
    }
}
