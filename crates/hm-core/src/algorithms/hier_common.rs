//! Shared machinery for the three-layer algorithms (HierMinimax and
//! HierFAVG): the `ModelUpdate` procedure — `τ2` client-edge aggregation
//! blocks of `τ1` local SGD steps each — with optional checkpoint capture.
//!
//! Two execution engines produce bit-identical results (asserted by
//! `tests/determinism.rs`):
//!
//! - [`ExecEngine::Chained`] (default) — one parallel task **per edge**
//!   runs that edge's `τ2` blocks sequentially with its clients fanned
//!   out inside, so a round costs a single fork/join instead of `τ2` of
//!   them. Client training reuses thread-local scratch
//!   ([`hm_nn::with_scratch`]), fault/metering decisions are hoisted into
//!   a sequential prepass (keyed fault streams make them independent of
//!   execution order), and trace/telemetry events are replayed after the
//!   join in the exact legacy order.
//! - [`ExecEngine::Barrier`] — the pre-chain engine, kept as the frozen
//!   reference: a global fork/join per block with per-call workspace
//!   allocation. Benchmarks (`hm-bench`, `results/BENCH_roundtime.json`)
//!   measure the chained engine against this baseline.
//!
//! Bit-identity holds because every reduction runs in the same slot order
//! in both engines (DESIGN.md §7), the per-client RNG streams are keyed by
//! `(seed, purpose, block, client)` rather than execution order, and the
//! straggler-slot accumulator is fed per block in `t2` order by both
//! engines.

use crate::localsgd::{local_sgd_fresh, local_sgd_into};
use crate::problem::FederatedProblem;
use hm_data::rng::{Purpose, StreamKey, StreamRng};
use hm_data::Dataset;
use std::collections::HashMap;
use hm_simnet::trace::{Event, Trace};
use hm_simnet::{
    CommMeter, ExecEngine, FaultInjector, Link, Parallelism, Quantizer, StragglerFate,
};
use hm_telemetry::{Phase, Profiler, Telemetry, TelemetryEvent};
use hm_tensor::{vecops, Aggregator};

/// A client's block output: the updated model and, in the checkpoint
/// block, the checkpoint snapshot.
type ClientBlockResult = (Vec<f32>, Option<Vec<f32>>);

/// Live client membership for churn-enabled runs: which global client ids
/// each edge currently serves, plus the data shards minted for mid-run
/// joiners. `None` in [`EdgeBlockParams::roster`] means the frozen
/// topology enumeration (`gid = edge·n₀ + idx`) — the bit-exact legacy
/// layout every churn-off run takes.
#[derive(Debug, Clone, Default)]
pub(crate) struct ClientRoster {
    /// `members[edge]` — active global client ids, in deterministic
    /// order (originals first, then re-homed/joined arrivals in
    /// assignment order). Mirrors `ActiveTopology::members_of`.
    members: Vec<Vec<usize>>,
    /// Data shards of clients that joined mid-run, keyed by global id.
    /// Original clients (`gid < N`) resolve through the problem scenario.
    joined: HashMap<usize, Dataset>,
}

impl ClientRoster {
    pub(crate) fn new(members: Vec<Vec<usize>>) -> Self {
        Self {
            members,
            joined: HashMap::new(),
        }
    }

    /// Replace the per-edge member lists (called once per round after the
    /// churn transitions are applied).
    pub(crate) fn sync_members(&mut self, members: &[Vec<usize>]) {
        self.members.clear();
        self.members.extend_from_slice(members);
    }

    /// Register the data shard of a freshly joined client.
    pub(crate) fn insert_joined(&mut self, gid: usize, data: Dataset) {
        self.joined.insert(gid, data);
    }

    /// Active global client ids currently homed at `edge`.
    pub(crate) fn members_of(&self, edge: usize) -> &[usize] {
        &self.members[edge]
    }

    /// Resolve a global client id to its training shard: original clients
    /// decompose into `(edge, idx)` against the frozen topology; joiner
    /// ids look up the shard minted at join time.
    pub(crate) fn data<'a>(&'a self, problem: &'a FederatedProblem, gid: usize) -> &'a Dataset {
        let n0 = problem.clients_per_edge();
        if gid < problem.topology().total_clients() {
            problem.client_data(gid / n0, gid % n0)
        } else {
            self.joined
                .get(&gid)
                .unwrap_or_else(|| panic!("no data shard for joined client {gid}"))
        }
    }
}

/// Flattened client-slot layout of one round: for each participating edge
/// `ei`, the global ids of its current members, contiguous in `gids` at
/// `offsets[ei]..offsets[ei+1]`. With no roster this is exactly the legacy
/// uniform layout (`offsets[ei] = ei·n₀`, `gids[slot] = client_id(edge,
/// slot % n₀)`), so every index computed from it — and therefore every
/// draw, fold, and meter total — is bit-identical to pre-churn builds.
struct SlotMap {
    gids: Vec<usize>,
    offsets: Vec<usize>,
}

impl SlotMap {
    fn build(p: &EdgeBlockParams<'_>) -> Self {
        let topo = p.problem.topology();
        let mut gids = Vec::new();
        let mut offsets = Vec::with_capacity(p.edges.len() + 1);
        offsets.push(0);
        for &e in p.edges {
            match p.roster {
                Some(r) => gids.extend_from_slice(r.members_of(e)),
                None => gids.extend(topo.clients_of(e)),
            }
            offsets.push(gids.len());
        }
        Self { gids, offsets }
    }

    /// Total client slots across the participating edges.
    fn n_slots(&self) -> usize {
        self.gids.len()
    }

    /// Slot range of participating edge `ei`.
    fn range(&self, ei: usize) -> std::ops::Range<usize> {
        self.offsets[ei]..self.offsets[ei + 1]
    }

    /// Member count of participating edge `ei`.
    fn len_of(&self, ei: usize) -> usize {
        self.offsets[ei + 1] - self.offsets[ei]
    }
}

/// Training shard of the client in a slot (see [`ClientRoster::data`]).
fn data_of<'a>(p: &EdgeBlockParams<'a>, gid: usize) -> &'a Dataset {
    match p.roster {
        Some(r) => r.data(p.problem, gid),
        None => {
            let n0 = p.problem.clients_per_edge();
            p.problem.client_data(gid / n0, gid % n0)
        }
    }
}

/// Result of one edge server's `ModelUpdate` procedure.
#[derive(Debug, Clone)]
pub(crate) struct EdgeBlockOutput {
    /// The edge id this output belongs to.
    pub edge: usize,
    /// `w_e^{(k, τ2)}` — the edge model after all aggregation blocks.
    pub w_final: Vec<f32>,
    /// `w_e^{(k, c2, c1)}` — the aggregated checkpoint model, when a
    /// checkpoint index was supplied.
    pub checkpoint: Option<Vec<f32>>,
    /// Per local client slot `c`: `(Σ blocks ‖upload − block-start‖₂,
    /// blocks participated)`, measured on the decoded upload (after
    /// quantization and any Byzantine corruption) — the observable the
    /// quarantine pass z-scores. Empty unless
    /// [`EdgeBlockParams::track_norms`] is set.
    pub client_norms: Vec<(f64, u32)>,
}

/// Parameters of one round's `ModelUpdate` across the participating edges.
pub(crate) struct EdgeBlockParams<'a> {
    pub problem: &'a FederatedProblem,
    /// The global model broadcast by the cloud at the start of the round.
    pub w_start: &'a [f32],
    /// Distinct participating edge ids.
    pub edges: &'a [usize],
    pub tau1: usize,
    pub tau2: usize,
    pub eta_w: f32,
    pub batch_size: usize,
    /// Checkpoint index `(c1, c2)`, or `None` for minimization methods.
    pub checkpoint: Option<(usize, usize)>,
    /// Codec applied to client model uploads (the Hier-Local-QSGD
    /// extension); downlink broadcasts stay full precision.
    pub quantizer: Quantizer,
    /// Fault oracle deciding per-block client crashes and straggler fates
    /// (keyed streams, so deterministic and independent of execution
    /// order). A crashed client neither computes nor uploads for that
    /// block; a straggler past the deadline computes but its late upload
    /// is discarded and not metered. The edge averages the survivors, and
    /// an edge whose clients all dropped keeps its block-start model.
    pub fault: &'a FaultInjector,
    /// Hierarchy level of these clients' subtree (0 = the three-layer
    /// client-edge-cloud case, preserving the legacy dropout streams;
    /// deeper multi-level trees pass their depth so equal block indices at
    /// different levels draw independent fault bits).
    pub level: usize,
    /// Whether this call records `ClientEdge` synchronisation rounds.
    /// Callers that invoke `run_edge_blocks` once per edge (the
    /// heterogeneous-rate path) set this false and record the round count
    /// themselves, because concurrent edges share sync windows: metering
    /// each edge's blocks separately would count the same wall-clock
    /// window once per edge.
    pub record_rounds: bool,
    /// Training round `k` (keys the RNG streams).
    pub round: usize,
    pub seed: u64,
    pub meter: &'a CommMeter,
    pub par: Parallelism,
    /// Round scheduling strategy (see module docs). Both engines are
    /// bit-identical; `Barrier` exists as the benchmark baseline and as a
    /// cross-check in the determinism suite.
    pub engine: ExecEngine,
    pub trace: &'a Trace,
    pub telemetry: &'a Telemetry,
    /// Span profiler. Per-edge chain durations are measured inside the
    /// workers (wall-clock only — never consulted by the computation) and
    /// recorded after the join, in edge order, so profiled span streams
    /// are identical in shape across engines and parallelism modes.
    pub profile: &'a Profiler,
    /// Client→edge reduction rule. [`Aggregator::Mean`] is the frozen
    /// reference path (bit-identical to the historical
    /// `average_present_into` fold); the robust rules defend against
    /// Byzantine uploads at the cost of statistical efficiency.
    pub aggregator: Aggregator,
    /// Per-global-client quarantine horizon: client `i` sits out every
    /// block of the round while `round < quarantined[i]` (it neither
    /// computes nor uploads, and makes no fault-stream draws). An empty
    /// slice disables the check at zero cost.
    pub quarantined: &'a [u64],
    /// Collect [`EdgeBlockOutput::client_norms`] for the quarantine pass.
    /// Off by default — norm tracking costs one `dist2_sq` per surviving
    /// upload but never perturbs the trained bits.
    pub track_norms: bool,
    /// Live membership for churn-enabled runs. `None` (every churn-off
    /// run) enumerates the frozen topology — the bit-exact legacy layout.
    pub roster: Option<&'a ClientRoster>,
}

/// Per-round fault and survivor schedule, computed before any client work.
///
/// The fault oracle draws from keyed streams, so its decisions depend only
/// on `(block, level, client)` — hoisting them out of the parallel region
/// changes nothing about the outcome but lets the chained engine run whole
/// edges without synchronising, and lets communication be metered in
/// closed form. Oracle queries and the straggler-slot accumulator are
/// driven in the same `(t2, slot)` order the barrier engine uses, so
/// fault statistics stay bit-identical.
struct RoundSchedule {
    /// `alive[t2 * n_slots + slot]` — does that slot's upload survive
    /// block `t2`? (With no roster, `slot = ei·n₀ + c`, the legacy flat
    /// layout.)
    alive: Vec<bool>,
    /// `corrupt[t2 * n_slots + slot]` — is that surviving upload
    /// Byzantine-corrupted? (Same indexing; always `false` for dead
    /// slots, and drawn from the dedicated `Purpose::Adversary` stream
    /// so a zero corruption rate makes no draws at all.)
    corrupt: Vec<bool>,
    /// Surviving uploads per block (`[t2]`).
    block_survivors: Vec<u64>,
}

impl RoundSchedule {
    fn survivors_of_edge(&self, slots: &SlotMap, t2: usize, ei: usize) -> usize {
        let base = t2 * slots.n_slots();
        let r = slots.range(ei);
        self.alive[base + r.start..base + r.end]
            .iter()
            .filter(|&&a| a)
            .count()
    }
}

fn compute_schedule(p: &EdgeBlockParams<'_>, slots: &SlotMap) -> RoundSchedule {
    let n_slots = slots.n_slots();
    let mut alive = vec![false; p.tau2 * n_slots];
    let mut corrupt = vec![false; p.tau2 * n_slots];
    let mut block_survivors = vec![0u64; p.tau2];
    for t2 in 0..p.tau2 {
        let block_tag = (p.round * p.tau2 + t2) as u64;
        // Which clients survive this block: a quarantined client sits the
        // round out (no fault-stream draws at all); otherwise a client is
        // cut by a crash or by straggling past the deadline; an
        // in-deadline straggler contributes but stretches the block's
        // shared sync window. Surviving uploads then draw their
        // Byzantine-corruption bit from the dedicated adversary stream.
        let mut max_slow = 1.0_f64;
        for slot in 0..n_slots {
            let client = slots.gids[slot];
            let a = if quarantine_excludes(p.quarantined, client, p.round) {
                p.fault.add_excluded(1);
                false
            } else if !p.fault.client_alive(block_tag, p.level, client) {
                false
            } else {
                match p.fault.straggler(block_tag, p.level, client) {
                    StragglerFate::Missed => false,
                    StragglerFate::Slow(s) => {
                        max_slow = max_slow.max(s);
                        true
                    }
                    StragglerFate::OnTime => true,
                }
            };
            alive[t2 * n_slots + slot] = a;
            corrupt[t2 * n_slots + slot] = a && p.fault.client_corrupt(block_tag, p.level, client);
            block_survivors[t2] += u64::from(a);
        }
        if max_slow > 1.0 {
            // The synchronous block waits for its slowest in-deadline
            // straggler: τ1 nominal slots stretch by the slowdown factor.
            p.fault
                .add_straggler_slots((max_slow - 1.0) * p.tau1 as f64);
        }
    }
    RoundSchedule {
        alive,
        corrupt,
        block_survivors,
    }
}

/// Is `client` quarantined for `round`? An empty horizon table (the
/// disabled state) never excludes anybody.
fn quarantine_excludes(quarantined: &[u64], client: usize, round: usize) -> bool {
    quarantined
        .get(client)
        .is_some_and(|&until| (round as u64) < until)
}

/// Meter the whole round's client-edge traffic in closed form: one
/// broadcast to every client per block, one upload per surviving client
/// per block (doubled in the checkpoint block, whose model is piggybacked
/// on the gather), and `τ2` synchronisation rounds. Byte-for-byte the
/// same totals as the barrier engine's per-block calls, in a handful of
/// atomic updates.
fn meter_round(p: &EdgeBlockParams<'_>, slots: &SlotMap, schedule: &RoundSchedule) {
    let d = p.problem.num_params() as u64;
    let n_slots = slots.n_slots() as u64;
    p.meter
        .record_broadcast(Link::ClientEdge, d, p.tau2 as u64 * n_slots);
    let unit = p.quantizer.wire_floats(d as usize);
    let cp_block = p.checkpoint.map(|(_, c2)| c2);
    let mut plain_survivors = 0u64;
    for (t2, &s) in schedule.block_survivors.iter().enumerate() {
        if cp_block == Some(t2) {
            p.meter.record_gather(Link::ClientEdge, 2 * unit, s);
        } else {
            plain_survivors += s;
        }
    }
    p.meter
        .record_gather(Link::ClientEdge, unit, plain_survivors);
    if p.record_rounds {
        p.meter.record_rounds(Link::ClientEdge, p.tau2 as u64);
    }
}

/// Replay the round's protocol events after the parallel join, in the
/// exact order the barrier engine emits them while running: per block,
/// `LocalSteps` for every survivor in slot order, then per edge (with at
/// least one survivor) the checkpoint capture, the aggregation event, and
/// the telemetry record.
fn replay_events(p: &EdgeBlockParams<'_>, slots: &SlotMap, schedule: &RoundSchedule) {
    let ne = p.edges.len();
    let n_slots = slots.n_slots();
    for t2 in 0..p.tau2 {
        let is_cp_block = p.checkpoint.map(|(_, c2)| c2 == t2).unwrap_or(false);
        for ei in 0..ne {
            for slot in slots.range(ei) {
                if schedule.alive[t2 * n_slots + slot] {
                    p.trace.record(|| Event::LocalSteps {
                        round: p.round,
                        t2,
                        edge: p.edges[ei],
                        client: slots.gids[slot],
                        steps: p.tau1,
                    });
                }
            }
        }
        for ei in 0..ne {
            let survivors = schedule.survivors_of_edge(slots, t2, ei);
            if survivors == 0 {
                continue;
            }
            if is_cp_block {
                p.trace.record(|| Event::CheckpointCaptured {
                    round: p.round,
                    edge: p.edges[ei],
                    t2,
                });
            }
            p.trace.record(|| Event::ClientEdgeAggregation {
                round: p.round,
                edge: p.edges[ei],
                t2,
            });
            p.telemetry.record(|| TelemetryEvent::BlockAggregated {
                round: p.round,
                edge: p.edges[ei],
                t2,
                survivors,
            });
        }
    }
}

/// Run `τ2` client-edge aggregation blocks on each participating edge.
///
/// All clients of all participating edges execute a block concurrently
/// (they are mutually independent); blocks are sequential, as the protocol
/// requires. Communication is metered on the `ClientEdge` link: one
/// broadcast + one gather + one round per block, with the checkpoint model
/// piggybacked on the gather of block `c2` (doubling that block's uplink
/// payload, as in the paper where clients "send along" the checkpoint).
pub(crate) fn run_edge_blocks(p: EdgeBlockParams<'_>) -> Vec<EdgeBlockOutput> {
    match p.engine {
        ExecEngine::Chained => run_edge_blocks_chained(&p),
        ExecEngine::Barrier => run_edge_blocks_barrier(&p),
    }
}

/// Per-edge chain result: final edge model, checkpoint model, per-client
/// `(summed update norm, block count)` samples for the quarantine pass,
/// and the chain's wall-clock seconds for the profiler.
type ChainOutput = (Vec<f32>, Option<Vec<f32>>, Vec<(f64, u32)>, f64);

/// The chained engine: fault schedule and metering up front, then one
/// task per edge running all `τ2` blocks back to back, then event replay.
fn run_edge_blocks_chained(p: &EdgeBlockParams<'_>) -> Vec<EdgeBlockOutput> {
    let ne = p.edges.len();
    let slots = SlotMap::build(p);
    let schedule = compute_schedule(p, &slots);
    meter_round(p, &slots, &schedule);

    let outputs: Vec<ChainOutput> = {
        let schedule = &schedule;
        let slots = &slots;
        p.par.map_chains(ne, |ei| {
            hm_nn::with_scratch(|scratch| {
                let chain_timer = p.profile.start();
                let n0_e = slots.len_of(ei);
                let mut model = p.w_start.to_vec();
                let mut checkpoint: Option<Vec<f32>> = None;
                // Per-client upload buffers, reused across blocks. An
                // empty model slot means "dropped this block" (models are
                // never zero-length), which is what the aggregation's
                // presence test reads.
                let mut client_w: Vec<Vec<f32>> = vec![Vec::new(); n0_e];
                let mut client_cp: Vec<Option<Vec<f32>>> = vec![None; n0_e];
                // Robust-aggregation workspace, reused across blocks. The
                // base snapshot is only cloned for rules that need the
                // block-start model (NormClip), so the Mean path stays
                // allocation-free beyond the buffers above.
                let needs_base = p.aggregator.needs_base();
                let mut agg_scratch: Vec<f32> = Vec::new();
                let mut base_buf: Vec<f32> = Vec::new();
                let mut norms: Vec<(f64, u32)> = if p.track_norms {
                    vec![(0.0, 0); n0_e]
                } else {
                    Vec::new()
                };
                for t2 in 0..p.tau2 {
                    let is_cp_block = p.checkpoint.map(|(_, c2)| c2 == t2).unwrap_or(false);
                    let cp_after = p.checkpoint.and_then(|(c1, c2)| (c2 == t2).then_some(c1));
                    let base = t2 * slots.n_slots() + slots.offsets[ei];
                    for c in 0..n0_e {
                        client_cp[c] = None;
                        if !schedule.alive[base + c] {
                            client_w[c].clear();
                            continue;
                        }
                        let client = slots.gids[slots.offsets[ei] + c];
                        let mut rng = StreamRng::for_key(StreamKey::new(
                            p.seed,
                            Purpose::Batch,
                            (p.round * p.tau2 + t2) as u64,
                            client as u64,
                        ));
                        let mut cp_out = local_sgd_into(
                            &*p.problem.model,
                            data_of(p, client),
                            &model,
                            &mut client_w[c],
                            p.tau1,
                            p.eta_w,
                            p.batch_size,
                            &p.problem.w_domain,
                            &mut rng,
                            cp_after,
                            scratch,
                        );
                        // A Byzantine client corrupts its honest update
                        // before the (honest, edge-side-decoded) uplink
                        // codec sees it. The checkpoint rides the same
                        // gather, so it is forged too.
                        if schedule.corrupt[base + c] {
                            let block_tag = (p.round * p.tau2 + t2) as u64;
                            p.fault.corrupt_update(
                                block_tag,
                                p.level,
                                client,
                                &model,
                                &mut client_w[c],
                            );
                            if let Some(cp) = cp_out.as_mut() {
                                p.fault
                                    .corrupt_update(block_tag, p.level, client, &model, cp);
                            }
                        }
                        // Uplink codec: quantize the *update delta* against
                        // the block-start model the edge already holds (as
                        // in Hier-Local-QSGD — deltas are small, so coarse
                        // grids stay accurate), then reconstruct the model
                        // the edge decodes.
                        if p.quantizer != Quantizer::Exact {
                            let mut qrng = StreamRng::for_key(StreamKey::new(
                                p.seed,
                                Purpose::Quantize,
                                (p.round * p.tau2 + t2) as u64,
                                client as u64,
                            ));
                            quantize_delta(&p.quantizer, &model, &mut client_w[c], &mut qrng);
                            if let Some(cp) = cp_out.as_mut() {
                                quantize_delta(&p.quantizer, &model, cp, &mut qrng);
                            }
                        }
                        if p.track_norms {
                            let entry = &mut norms[c];
                            entry.0 += vecops::dist2_sq(&client_w[c], &model).sqrt();
                            entry.1 += 1;
                        }
                        client_cp[c] = cp_out;
                    }
                    // Edge-side aggregation over survivors, in slot order
                    // (the bit-exact fold order of DESIGN.md §7) — Mean is
                    // the historical `average_present_into` fold; the
                    // robust rules share its presence test and fold order.
                    // With no survivors the edge keeps its block-start
                    // model (and captures no checkpoint).
                    if needs_base {
                        base_buf.clone_from(&model);
                    }
                    let survivors = p.aggregator.aggregate_present_into(
                        &client_w,
                        |w| (!w.is_empty()).then_some(w.as_slice()),
                        needs_base.then_some(base_buf.as_slice()),
                        &mut agg_scratch,
                        &mut model,
                    );
                    if survivors == 0 {
                        continue;
                    }
                    if is_cp_block {
                        let mut cp = vec![0.0_f32; model.len()];
                        let got = p.aggregator.aggregate_present_into(
                            &client_cp,
                            Option::as_deref,
                            needs_base.then_some(base_buf.as_slice()),
                            &mut agg_scratch,
                            &mut cp,
                        );
                        assert_eq!(got, survivors, "checkpoint block must return checkpoints");
                        checkpoint = Some(cp);
                    }
                }
                (model, checkpoint, norms, chain_timer.elapsed_s())
            })
        })
    };

    replay_events(p, &slots, &schedule);
    for (ei, (_, _, _, chain_s)) in outputs.iter().enumerate() {
        p.profile.record_secs(
            p.telemetry,
            Phase::LocalSgdChain,
            Some(p.round),
            Some(p.edges[ei]),
            *chain_s,
        );
    }

    p.edges
        .iter()
        .zip(outputs)
        .map(|(&edge, (w_final, checkpoint, client_norms, _))| {
            finish_edge(p, edge, w_final, checkpoint, client_norms)
        })
        .collect()
}

/// Checkpoint fallback shared by both engines: if every client of an edge
/// dropped during the checkpoint block, fall back to the edge's final
/// model so Phase 2 still has an estimate to evaluate (slightly biased,
/// but only in a failure corner the paper's protocol does not define).
fn finish_edge(
    p: &EdgeBlockParams<'_>,
    edge: usize,
    w_final: Vec<f32>,
    checkpoint: Option<Vec<f32>>,
    client_norms: Vec<(f64, u32)>,
) -> EdgeBlockOutput {
    let checkpoint = match (checkpoint, p.checkpoint) {
        (None, Some(_)) => Some(w_final.clone()),
        (cp, _) => cp,
    };
    EdgeBlockOutput {
        edge,
        w_final,
        checkpoint,
        client_norms,
    }
}

/// The barrier engine: the pre-chain scheduler, frozen as the reference
/// implementation the chained engine is benchmarked and cross-checked
/// against. One global fork/join per block, per-call training scratch
/// ([`local_sgd_fresh`]), per-block result and survivor vectors.
fn run_edge_blocks_barrier(p: &EdgeBlockParams<'_>) -> Vec<EdgeBlockOutput> {
    let d = p.problem.num_params() as u64;
    let slots = SlotMap::build(p);
    let n_slots = slots.n_slots();
    let mut edge_models: Vec<Vec<f32>> = p.edges.iter().map(|_| p.w_start.to_vec()).collect();
    let mut edge_checkpoints: Vec<Option<Vec<f32>>> = vec![None; p.edges.len()];
    // Per-edge accumulated work time across blocks (client tasks + the
    // edge's aggregation fold), so the barrier engine emits the same
    // one-span-per-edge stream as the chained engine's whole-chain timer.
    let mut chain_s = vec![0.0_f64; p.edges.len()];
    // Robust-aggregation workspace and quarantine observables, mirroring
    // the chained engine (flat slot-map norm slots here).
    let needs_base = p.aggregator.needs_base();
    let mut agg_scratch: Vec<f32> = Vec::new();
    let mut base_buf: Vec<f32> = Vec::new();
    let mut norms: Vec<(f64, u32)> = if p.track_norms {
        vec![(0.0, 0); n_slots]
    } else {
        Vec::new()
    };

    for t2 in 0..p.tau2 {
        let is_cp_block = p.checkpoint.map(|(_, c2)| c2 == t2).unwrap_or(false);
        let cp_after = p.checkpoint.and_then(|(c1, c2)| (c2 == t2).then_some(c1));
        let block_tag = (p.round * p.tau2 + t2) as u64;
        let mut max_slow = 1.0_f64;
        let mut corrupt = vec![false; n_slots];
        let alive: Vec<bool> = (0..n_slots)
            .map(|slot| {
                let client = slots.gids[slot];
                let a = if quarantine_excludes(p.quarantined, client, p.round) {
                    p.fault.add_excluded(1);
                    false
                } else if !p.fault.client_alive(block_tag, p.level, client) {
                    false
                } else {
                    match p.fault.straggler(block_tag, p.level, client) {
                        StragglerFate::Missed => false,
                        StragglerFate::Slow(s) => {
                            max_slow = max_slow.max(s);
                            true
                        }
                        StragglerFate::OnTime => true,
                    }
                };
                corrupt[slot] = a && p.fault.client_corrupt(block_tag, p.level, client);
                a
            })
            .collect();
        if max_slow > 1.0 {
            p.fault
                .add_straggler_slots((max_slow - 1.0) * p.tau1 as f64);
        }
        // Edge broadcasts its block-start model to its clients.
        p.meter
            .record_broadcast(Link::ClientEdge, d, n_slots as u64);

        // All (edge, client) pairs run τ1 local steps concurrently, with a
        // full join before the edge aggregations. Tasks carry the flat
        // slot index; the owning edge is recovered from the slot map.
        let tasks: Vec<(usize, usize)> = (0..p.edges.len())
            .flat_map(|ei| slots.range(ei).map(move |slot| (ei, slot)))
            .filter(|&(_, slot)| alive[slot])
            .collect();
        let results_alive: Vec<(Vec<f32>, Option<Vec<f32>>, f64)> = {
            let edge_models = &edge_models;
            let corrupt = &corrupt;
            let slots = &slots;
            p.par.map_ref(&tasks, |&(ei, slot)| {
                let task_timer = p.profile.start();
                let client = slots.gids[slot];
                let mut rng = StreamRng::for_key(StreamKey::new(
                    p.seed,
                    Purpose::Batch,
                    (p.round * p.tau2 + t2) as u64,
                    client as u64,
                ));
                let (mut w_out, mut cp_out) = local_sgd_fresh(
                    &*p.problem.model,
                    data_of(p, client),
                    &edge_models[ei],
                    p.tau1,
                    p.eta_w,
                    p.batch_size,
                    &p.problem.w_domain,
                    &mut rng,
                    cp_after,
                );
                if corrupt[slot] {
                    let base = &edge_models[ei];
                    p.fault
                        .corrupt_update(block_tag, p.level, client, base, &mut w_out);
                    if let Some(cp) = cp_out.as_mut() {
                        p.fault.corrupt_update(block_tag, p.level, client, base, cp);
                    }
                }
                if p.quantizer != Quantizer::Exact {
                    let mut qrng = StreamRng::for_key(StreamKey::new(
                        p.seed,
                        Purpose::Quantize,
                        (p.round * p.tau2 + t2) as u64,
                        client as u64,
                    ));
                    let base = &edge_models[ei];
                    quantize_delta(&p.quantizer, base, &mut w_out, &mut qrng);
                    if let Some(cp) = cp_out.as_mut() {
                        quantize_delta(&p.quantizer, base, cp, &mut qrng);
                    }
                }
                (w_out, cp_out, task_timer.elapsed_s())
            })
        };
        // Scatter results back to their slots; dropped slots None.
        let mut results: Vec<Option<ClientBlockResult>> = (0..n_slots).map(|_| None).collect();
        for (&(ei, slot), (w_out, cp_out, secs)) in tasks.iter().zip(results_alive) {
            p.trace.record(|| Event::LocalSteps {
                round: p.round,
                t2,
                edge: p.edges[ei],
                client: slots.gids[slot],
                steps: p.tau1,
            });
            chain_s[ei] += secs;
            if p.track_norms {
                let entry = &mut norms[slot];
                entry.0 += vecops::dist2_sq(&w_out, &edge_models[ei]).sqrt();
                entry.1 += 1;
            }
            results[slot] = Some((w_out, cp_out));
        }

        // Surviving clients upload their (possibly quantized) models, plus
        // the checkpoint in block c2.
        let unit = p.quantizer.wire_floats(d as usize);
        let floats_up = if is_cp_block { 2 * unit } else { unit };
        let survivors = alive.iter().filter(|&&a| a).count() as u64;
        p.meter
            .record_gather(Link::ClientEdge, floats_up, survivors);
        if p.record_rounds {
            p.meter.record_round(Link::ClientEdge);
        }

        // Edge-side aggregation over survivors (deterministic order:
        // clients are indexed). The aggregator's Mean arm is the
        // historical `average_present_into` fold over the result slots —
        // bit-identical to the frozen `average_into(compacted)` reference
        // (asserted in `hm_tensor::vecops` tests).
        for (ei, model) in edge_models.iter_mut().enumerate() {
            let agg_timer = p.profile.start();
            let edge_results = &results[slots.range(ei)];
            // An edge with no surviving clients keeps its block-start
            // model (and captures no checkpoint from this block).
            if edge_results.iter().any(|s| s.is_some()) {
                if needs_base {
                    base_buf.clone_from(model);
                }
                let survivors = p.aggregator.aggregate_present_into(
                    edge_results,
                    |s| s.as_ref().map(|(w, _)| w.as_slice()),
                    needs_base.then_some(base_buf.as_slice()),
                    &mut agg_scratch,
                    model,
                );
                if is_cp_block {
                    let mut cp = vec![0.0_f32; model.len()];
                    let got = p.aggregator.aggregate_present_into(
                        edge_results,
                        |s| {
                            s.as_ref().map(|(_, cp)| {
                                cp.as_deref()
                                    .expect("checkpoint block must return checkpoints")
                            })
                        },
                        needs_base.then_some(base_buf.as_slice()),
                        &mut agg_scratch,
                        &mut cp,
                    );
                    assert_eq!(got, survivors, "checkpoint block must return checkpoints");
                    edge_checkpoints[ei] = Some(cp);
                    p.trace.record(|| Event::CheckpointCaptured {
                        round: p.round,
                        edge: p.edges[ei],
                        t2,
                    });
                }
                p.trace.record(|| Event::ClientEdgeAggregation {
                    round: p.round,
                    edge: p.edges[ei],
                    t2,
                });
                p.telemetry.record(|| TelemetryEvent::BlockAggregated {
                    round: p.round,
                    edge: p.edges[ei],
                    t2,
                    survivors,
                });
            }
            chain_s[ei] += agg_timer.elapsed_s();
        }
    }

    for (ei, &edge) in p.edges.iter().enumerate() {
        p.profile.record_secs(
            p.telemetry,
            Phase::LocalSgdChain,
            Some(p.round),
            Some(edge),
            chain_s[ei],
        );
    }

    p.edges
        .iter()
        .enumerate()
        .zip(edge_models)
        .zip(edge_checkpoints)
        .map(|(((ei, &edge), w_final), checkpoint)| {
            let client_norms = if p.track_norms {
                norms[slots.range(ei)].to_vec()
            } else {
                Vec::new()
            };
            finish_edge(p, edge, w_final, checkpoint, client_norms)
        })
        .collect()
}

/// Quantize `v` as a delta against `base` (which the receiver already
/// holds), then reconstruct: `v ← base + Q(v − base)`. This is the
/// Hier-Local-QSGD upload codec — update deltas shrink with the learning
/// rate, so even coarse grids quantize them accurately.
pub(crate) fn quantize_delta(
    q: &Quantizer,
    base: &[f32],
    v: &mut [f32],
    rng: &mut hm_data::StreamRng,
) {
    debug_assert_eq!(base.len(), v.len());
    for (x, &b) in v.iter_mut().zip(base) {
        *x -= b;
    }
    q.apply(v, rng);
    for (x, &b) in v.iter_mut().zip(base) {
        *x += b;
    }
}

/// Cloud-side reduction of edge (or checkpoint) models under the
/// configured aggregator. `Aggregator::Mean` takes the frozen reference
/// paths — [`vecops::weighted_average_into`] when sampling weights are
/// supplied, [`vecops::average_into`] otherwise — so robust-off runs stay
/// bit-identical to historical behaviour. The robust rules are unweighted
/// by construction (a weighted trimmed mean would let an adversary buy
/// influence through the sampler), so they ignore `weights`; `base` is the
/// pre-aggregation global model NormClip measures deviations against.
pub(crate) fn robust_reduce_into(
    agg: &Aggregator,
    inputs: &[&[f32]],
    weights: Option<&[f64]>,
    base: &[f32],
    scratch: &mut Vec<f32>,
    out: &mut [f32],
) {
    match (agg, weights) {
        (Aggregator::Mean, Some(ws)) => vecops::weighted_average_into(inputs, ws, out),
        (Aggregator::Mean, None) => vecops::average_into(inputs, out),
        _ => {
            let got = agg.aggregate_present_into(
                inputs,
                |v| Some(*v),
                agg.needs_base().then_some(base),
                scratch,
                out,
            );
            debug_assert_eq!(got, inputs.len());
        }
    }
}

/// Per-round quarantine controller: z-scores each reporting client's mean
/// per-block update norm against the cohort and benches outliers for a
/// fixed window of rounds. Driven by the run loops between rounds —
/// entirely outside the parallel region, so it cannot perturb execution
/// order — and keyed off *observed* uploads only, which makes it a pure
/// function of the round's outputs (checkpoint/resume serializes just the
/// horizon table).
pub(crate) struct QuarantineCtl {
    /// Trigger threshold in standard deviations (`0` = disabled).
    z: f64,
    /// Rounds a flagged client sits out.
    window: u64,
    /// Per-global-client exclusion horizon: quarantined while
    /// `round < until[client]`.
    until: Vec<u64>,
    /// This round's summed update norms / block counts per global client.
    sums: Vec<f64>,
    blocks: Vec<u32>,
}

impl QuarantineCtl {
    pub(crate) fn new(z: f64, window: usize, n_clients: usize) -> Self {
        let n = if z > 0.0 { n_clients } else { 0 };
        Self {
            z,
            window: window as u64,
            until: vec![0; n],
            sums: vec![0.0; n],
            blocks: vec![0; n],
        }
    }

    pub(crate) fn active(&self) -> bool {
        self.z > 0.0
    }

    /// The horizon table to pass as [`EdgeBlockParams::quarantined`]
    /// (empty when disabled, which turns the per-slot check off).
    pub(crate) fn exclusions(&self) -> &[u64] {
        &self.until
    }

    pub(crate) fn begin_round(&mut self) {
        self.sums.fill(0.0);
        self.blocks.fill(0);
    }

    /// Grow the per-client tables to cover `n` global ids (no-op when
    /// disabled or already large enough). Churn-enabled runs call this
    /// after joins mint fresh ids, so the horizon table covers every
    /// client that can ever report.
    pub(crate) fn ensure_clients(&mut self, n: usize) {
        if self.active() && n > self.until.len() {
            self.until.resize(n, 0);
            self.sums.resize(n, 0.0);
            self.blocks.resize(n, 0);
        }
    }

    /// Fold one `run_edge_blocks` output batch into this round's
    /// observations. With a roster (churn active), per-edge norm slots map
    /// to the edge's current members; otherwise to the frozen topology.
    pub(crate) fn observe(
        &mut self,
        problem: &FederatedProblem,
        roster: Option<&ClientRoster>,
        outputs: &[EdgeBlockOutput],
    ) {
        if !self.active() {
            return;
        }
        let topo = problem.topology();
        for o in outputs {
            for (c, &(norm, blocks)) in o.client_norms.iter().enumerate() {
                if blocks > 0 {
                    let id = match roster {
                        Some(r) => r.members_of(o.edge)[c],
                        None => topo.client_id(o.edge, c),
                    };
                    self.ensure_clients(id + 1);
                    self.sums[id] += norm;
                    self.blocks[id] += blocks;
                }
            }
        }
    }

    /// Close the round: z-score the reporters, bench fresh outliers until
    /// `round + 1 + window`, and emit one unsequenced `Quarantine`
    /// telemetry event per newly benched client (global-id order).
    /// Returns how many clients were newly quarantined.
    pub(crate) fn end_round(
        &mut self,
        round: usize,
        fault: &FaultInjector,
        telemetry: &Telemetry,
    ) -> usize {
        if !self.active() {
            return 0;
        }
        let reporters: Vec<(usize, f64)> = (0..self.until.len())
            .filter(|&id| self.blocks[id] > 0)
            .map(|id| (id, self.sums[id] / f64::from(self.blocks[id])))
            .collect();
        // A z-score over fewer than three points is meaningless, and a
        // degenerate (all-equal) cohort has no outliers.
        if reporters.len() < 3 {
            return 0;
        }
        let n = reporters.len() as f64;
        let mean = reporters.iter().map(|&(_, x)| x).sum::<f64>() / n;
        let var = reporters
            .iter()
            .map(|&(_, x)| (x - mean) * (x - mean))
            .sum::<f64>()
            / n;
        let std = var.sqrt();
        if std <= 1e-12 {
            return 0;
        }
        let mut newly = 0u64;
        for &(id, x) in &reporters {
            if (x - mean) / std > self.z {
                let until = (round + 1) as u64 + self.window;
                self.until[id] = until;
                newly += 1;
                telemetry.record_unsequenced(|| TelemetryEvent::Quarantine {
                    round,
                    client: id,
                    until: until as usize,
                });
            }
        }
        if newly > 0 {
            fault.add_quarantined(newly);
        }
        newly as usize
    }

    /// Raw horizon table for the checkpoint extras section.
    pub(crate) fn state(&self) -> &[u64] {
        &self.until
    }

    /// Restore a checkpointed horizon table (no-op when disabled). The
    /// table may be larger than the fresh one when membership churn
    /// minted joiner ids before the snapshot was written; it can never
    /// legitimately be smaller.
    pub(crate) fn restore(&mut self, until: Vec<u64>) {
        if self.active() {
            assert!(
                until.len() >= self.until.len(),
                "quarantine state size mismatch on resume"
            );
            self.sums.resize(until.len(), 0.0);
            self.blocks.resize(until.len(), 0);
            self.until = until;
        }
    }
}

/// Count multiplicities of a with-replacement sample, returning
/// `(distinct_ids, multiplicities)` with distinct ids in first-seen order.
pub(crate) fn multiplicities(sampled: &[usize]) -> (Vec<usize>, Vec<usize>) {
    let mut distinct = Vec::new();
    let mut counts = Vec::new();
    for &e in sampled {
        match distinct.iter().position(|&x| x == e) {
            Some(i) => counts[i] += 1,
            None => {
                distinct.push(e);
                counts.push(1);
            }
        }
    }
    (distinct, counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hm_data::scenarios::tiny_problem;
    use hm_simnet::FaultPlan;

    fn meter_and_trace() -> (CommMeter, Trace) {
        (CommMeter::new(), Trace::enabled())
    }

    #[test]
    fn multiplicities_counts() {
        let (d, c) = multiplicities(&[3, 1, 3, 3, 0]);
        assert_eq!(d, vec![3, 1, 0]);
        assert_eq!(c, vec![3, 1, 1]);
        assert_eq!(c.iter().sum::<usize>(), 5);
    }

    #[test]
    fn edge_blocks_run_and_meter() {
        let sc = tiny_problem(3, 2, 1);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let (meter, trace) = meter_and_trace();
        let fi = FaultInjector::none(42);
        let w0 = vec![0.0; fp.num_params()];
        let out = run_edge_blocks(EdgeBlockParams {
            problem: &fp,
            w_start: &w0,
            edges: &[0, 2],
            tau1: 2,
            tau2: 3,
            eta_w: 0.1,
            batch_size: 2,
            checkpoint: Some((1, 1)),
            quantizer: Quantizer::Exact,
            fault: &fi,
            level: 0,
            record_rounds: true,
            round: 0,
            seed: 42,
            meter: &meter,
            par: Parallelism::Sequential,
            engine: ExecEngine::Chained,
            trace: &trace,
            telemetry: &Telemetry::disabled(),
            profile: &Profiler::disabled(),
            aggregator: Aggregator::Mean,
            quarantined: &[],
            track_norms: false,
            roster: None,
        });
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].edge, 0);
        assert_eq!(out[1].edge, 2);
        // Models moved away from zero, and checkpoints were captured.
        for o in &out {
            assert!(hm_tensor::vecops::norm2(&o.w_final) > 0.0);
            assert!(o.checkpoint.is_some());
        }
        let s = meter.snapshot();
        // 3 blocks → 3 client-edge rounds, zero cloud rounds here.
        assert_eq!(s.rounds(Link::ClientEdge), 3);
        assert_eq!(s.cloud_rounds(), 0);
        // Downlink: 3 blocks × 2 edges × 2 clients × d floats.
        let d = fp.num_params() as u64;
        assert_eq!(s.downlink_floats(Link::ClientEdge), 3 * 2 * 2 * d);
        // Uplink: (2 plain blocks × d + 1 checkpoint block × 2d) × 4 clients.
        assert_eq!(s.uplink_floats(Link::ClientEdge), (2 * d + 2 * d) * 4);
        // Trace recorded τ2 aggregations per edge.
        let events = trace.events();
        let aggs = events
            .iter()
            .filter(|e| matches!(e, Event::ClientEdgeAggregation { .. }))
            .count();
        assert_eq!(aggs, 2 * 3);
    }

    #[test]
    fn checkpoint_at_block_start_equals_block_model() {
        // With c1 = 0, the checkpoint is the block-start model; for c2 = 0
        // that is the broadcast global model itself.
        let sc = tiny_problem(2, 2, 3);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let (meter, trace) = (CommMeter::new(), Trace::disabled());
        let fi = FaultInjector::none(7);
        let w0 = vec![0.25; fp.num_params()];
        let out = run_edge_blocks(EdgeBlockParams {
            problem: &fp,
            w_start: &w0,
            edges: &[1],
            tau1: 3,
            tau2: 2,
            eta_w: 0.05,
            batch_size: 2,
            checkpoint: Some((0, 0)),
            quantizer: Quantizer::Exact,
            fault: &fi,
            level: 0,
            record_rounds: true,
            round: 0,
            seed: 7,
            meter: &meter,
            par: Parallelism::Sequential,
            engine: ExecEngine::Chained,
            trace: &trace,
            telemetry: &Telemetry::disabled(),
            profile: &Profiler::disabled(),
            aggregator: Aggregator::Mean,
            quarantined: &[],
            track_norms: false,
            roster: None,
        });
        assert_eq!(out[0].checkpoint.as_deref(), Some(w0.as_slice()));
    }

    /// Run the same round under a given engine/parallelism pair, returning
    /// outputs plus the observables both engines must agree on.
    fn run_one(
        fp: &FederatedProblem,
        fault: FaultPlan,
        engine: ExecEngine,
        par: Parallelism,
        quantizer: Quantizer,
    ) -> (Vec<EdgeBlockOutput>, hm_simnet::CommStats, Vec<Event>) {
        run_one_agg(fp, fault, engine, par, quantizer, Aggregator::Mean)
    }

    fn run_one_agg(
        fp: &FederatedProblem,
        fault: FaultPlan,
        engine: ExecEngine,
        par: Parallelism,
        quantizer: Quantizer,
        aggregator: Aggregator,
    ) -> (Vec<EdgeBlockOutput>, hm_simnet::CommStats, Vec<Event>) {
        let meter = CommMeter::new();
        let trace = Trace::enabled();
        let fi = FaultInjector::new(11, fault);
        let out = run_edge_blocks(EdgeBlockParams {
            problem: fp,
            w_start: &vec![0.0; fp.num_params()],
            edges: &[0, 1, 2],
            tau1: 2,
            tau2: 3,
            eta_w: 0.1,
            batch_size: 2,
            checkpoint: Some((1, 1)),
            quantizer,
            fault: &fi,
            level: 0,
            record_rounds: true,
            round: 3,
            seed: 11,
            meter: &meter,
            par,
            engine,
            trace: &trace,
            telemetry: &Telemetry::disabled(),
            profile: &Profiler::disabled(),
            aggregator,
            quarantined: &[],
            track_norms: true,
            roster: None,
        });
        (out, meter.snapshot(), trace.events())
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let sc = tiny_problem(3, 3, 9);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        for engine in [ExecEngine::Chained, ExecEngine::Barrier] {
            let (a, am, ae) = run_one(
                &fp,
                FaultPlan::default(),
                engine,
                Parallelism::Sequential,
                Quantizer::Exact,
            );
            let (b, bm, be) = run_one(
                &fp,
                FaultPlan::default(),
                engine,
                Parallelism::Rayon,
                Quantizer::Exact,
            );
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.w_final, y.w_final);
                assert_eq!(x.checkpoint, y.checkpoint);
            }
            assert_eq!(am, bm);
            assert_eq!(ae, be);
        }
    }

    #[test]
    fn chained_and_barrier_engines_are_bit_identical() {
        // The tentpole invariant at the unit level: identical models,
        // checkpoints, meter totals, and trace event *order* across
        // engines, under faults and quantization too.
        let sc = tiny_problem(3, 3, 9);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let chaotic = FaultPlan::preset("chaos").unwrap();
        let byzantine = FaultPlan::preset("byzantine").unwrap();
        for (fault, quantizer, aggregator) in [
            (FaultPlan::default(), Quantizer::Exact, Aggregator::Mean),
            (chaotic.clone(), Quantizer::Exact, Aggregator::Mean),
            (
                chaotic.clone(),
                Quantizer::Stochastic { bits: 4 },
                Aggregator::Mean,
            ),
            (
                byzantine.clone(),
                Quantizer::Exact,
                Aggregator::TrimmedMean { beta: 0.25 },
            ),
            (
                byzantine.clone(),
                Quantizer::Stochastic { bits: 4 },
                Aggregator::CoordinateMedian,
            ),
            (
                FaultPlan {
                    attack: hm_simnet::AttackModel::Collude,
                    ..byzantine
                },
                Quantizer::Exact,
                Aggregator::NormClip { tau: 0.5 },
            ),
        ] {
            for par in [Parallelism::Sequential, Parallelism::Rayon] {
                let (a, am, ae) = run_one_agg(
                    &fp,
                    fault.clone(),
                    ExecEngine::Chained,
                    par,
                    quantizer,
                    aggregator,
                );
                let (b, bm, be) = run_one_agg(
                    &fp,
                    fault.clone(),
                    ExecEngine::Barrier,
                    par,
                    quantizer,
                    aggregator,
                );
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.edge, y.edge);
                    assert_eq!(x.w_final, y.w_final);
                    assert_eq!(x.checkpoint, y.checkpoint);
                    assert_eq!(x.client_norms, y.client_norms, "norm observables diverged");
                }
                assert_eq!(am, bm, "meter totals diverged");
                assert_eq!(ae, be, "trace event order diverged");
            }
        }
    }

    #[test]
    fn quarantined_clients_sit_out_and_are_counted() {
        let sc = tiny_problem(2, 2, 4);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let topo = fp.topology();
        let n_clients = topo.total_clients();
        // Bench client 0 of edge 0 beyond this round; everyone else free.
        let mut until = vec![0u64; n_clients];
        let benched = topo.client_id(0, 0);
        until[benched] = 10;
        for engine in [ExecEngine::Chained, ExecEngine::Barrier] {
            let meter = CommMeter::new();
            let trace = Trace::enabled();
            let fi = FaultInjector::none(5);
            let out = run_edge_blocks(EdgeBlockParams {
                problem: &fp,
                w_start: &vec![0.0; fp.num_params()],
                edges: &[0, 1],
                tau1: 1,
                tau2: 2,
                eta_w: 0.1,
                batch_size: 2,
                checkpoint: None,
                quantizer: Quantizer::Exact,
                fault: &fi,
                level: 0,
                record_rounds: true,
                round: 3,
                seed: 5,
                meter: &meter,
                par: Parallelism::Sequential,
                engine,
                trace: &trace,
                telemetry: &Telemetry::disabled(),
                profile: &Profiler::disabled(),
                aggregator: Aggregator::Mean,
                quarantined: &until,
                track_norms: true,
                roster: None,
            });
            // The benched client never ran (no LocalSteps events) and was
            // counted once per block.
            assert!(trace.events().iter().all(|e| !matches!(
                e,
                Event::LocalSteps { client, .. } if *client == benched
            )));
            assert_eq!(fi.adversary_stats().excluded_uploads, 2);
            assert_eq!(out[0].client_norms[0], (0.0, 0));
            assert!(out[0].client_norms[1].1 > 0);
        }
    }

    #[test]
    fn quarantine_ctl_benches_the_outlier() {
        let sc = tiny_problem(3, 2, 2);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let n = fp.topology().total_clients();
        assert_eq!(n, 6);
        let mut ctl = QuarantineCtl::new(1.5, 4, n);
        assert!(ctl.active());
        ctl.begin_round();
        // Clients report ~1.0 except global client 3, a screaming outlier.
        let mk = |edge: usize, norms: Vec<(f64, u32)>| EdgeBlockOutput {
            edge,
            w_final: vec![0.0],
            checkpoint: None,
            client_norms: norms,
        };
        let outputs = vec![
            mk(0, vec![(1.0, 1), (1.1, 1)]),
            mk(1, vec![(0.9, 1), (50.0, 1)]),
            mk(2, vec![(1.0, 1), (1.05, 1)]),
        ];
        ctl.observe(&fp, None, &outputs);
        let fi = FaultInjector::none(1);
        let newly = ctl.end_round(7, &fi, &Telemetry::disabled());
        assert_eq!(newly, 1);
        let outlier = fp.topology().client_id(1, 1);
        assert_eq!(ctl.exclusions()[outlier], 7 + 1 + 4);
        assert!(quarantine_excludes(ctl.exclusions(), outlier, 9));
        assert!(!quarantine_excludes(ctl.exclusions(), outlier, 12));
        assert_eq!(fi.adversary_stats().quarantined_clients, 1);
        // Round-trip through the checkpoint state.
        let saved = ctl.state().to_vec();
        let mut ctl2 = QuarantineCtl::new(1.5, 4, n);
        ctl2.restore(saved);
        assert_eq!(ctl2.exclusions(), ctl.exclusions());
        // Disabled controller: no exclusions, no draws, no state.
        let off = QuarantineCtl::new(0.0, 4, n);
        assert!(!off.active());
        assert!(off.exclusions().is_empty());
    }

    #[test]
    fn robust_reduce_mean_matches_reference() {
        let a = vec![1.0_f32, 2.0, 3.0];
        let b = vec![3.0_f32, 0.0, 1.0];
        let base = vec![0.0_f32; 3];
        let mut scratch = Vec::new();
        let mut got = vec![0.0_f32; 3];
        let mut want = vec![0.0_f32; 3];
        robust_reduce_into(
            &Aggregator::Mean,
            &[&a, &b],
            None,
            &base,
            &mut scratch,
            &mut got,
        );
        vecops::average_into(&[&a, &b], &mut want);
        assert_eq!(got, want);
        let weights = [0.25_f64, 0.75];
        robust_reduce_into(
            &Aggregator::Mean,
            &[&a, &b],
            Some(&weights),
            &base,
            &mut scratch,
            &mut got,
        );
        vecops::weighted_average_into(&[&a, &b], &weights, &mut want);
        assert_eq!(got, want);
        // A robust rule routes through the aggregator kernels.
        robust_reduce_into(
            &Aggregator::CoordinateMedian,
            &[&a, &b],
            Some(&weights),
            &base,
            &mut scratch,
            &mut got,
        );
        assert_eq!(got, vec![2.0, 1.0, 2.0]);
    }
}
