//! Shared machinery for the three-layer algorithms (HierMinimax and
//! HierFAVG): the `ModelUpdate` procedure — `τ2` client-edge aggregation
//! blocks of `τ1` local SGD steps each — with optional checkpoint capture.
//!
//! Two execution engines produce bit-identical results (asserted by
//! `tests/determinism.rs`):
//!
//! - [`ExecEngine::Chained`] (default) — one parallel task **per edge**
//!   runs that edge's `τ2` blocks sequentially with its clients fanned
//!   out inside, so a round costs a single fork/join instead of `τ2` of
//!   them. Client training reuses thread-local scratch
//!   ([`hm_nn::with_scratch`]), fault/metering decisions are hoisted into
//!   a sequential prepass (keyed fault streams make them independent of
//!   execution order), and trace/telemetry events are replayed after the
//!   join in the exact legacy order.
//! - [`ExecEngine::Barrier`] — the pre-chain engine, kept as the frozen
//!   reference: a global fork/join per block with per-call workspace
//!   allocation. Benchmarks (`hm-bench`, `results/BENCH_roundtime.json`)
//!   measure the chained engine against this baseline.
//!
//! Bit-identity holds because every reduction runs in the same slot order
//! in both engines (DESIGN.md §7), the per-client RNG streams are keyed by
//! `(seed, purpose, block, client)` rather than execution order, and the
//! straggler-slot accumulator is fed per block in `t2` order by both
//! engines.

use crate::localsgd::{local_sgd_fresh, local_sgd_into};
use crate::problem::FederatedProblem;
use hm_data::rng::{Purpose, StreamKey, StreamRng};
use hm_simnet::trace::{Event, Trace};
use hm_simnet::{
    CommMeter, ExecEngine, FaultInjector, Link, Parallelism, Quantizer, StragglerFate,
};
use hm_telemetry::{Phase, Profiler, Telemetry, TelemetryEvent};
use hm_tensor::vecops;

/// A client's block output: the updated model and, in the checkpoint
/// block, the checkpoint snapshot.
type ClientBlockResult = (Vec<f32>, Option<Vec<f32>>);

/// Result of one edge server's `ModelUpdate` procedure.
#[derive(Debug, Clone)]
pub(crate) struct EdgeBlockOutput {
    /// The edge id this output belongs to.
    pub edge: usize,
    /// `w_e^{(k, τ2)}` — the edge model after all aggregation blocks.
    pub w_final: Vec<f32>,
    /// `w_e^{(k, c2, c1)}` — the aggregated checkpoint model, when a
    /// checkpoint index was supplied.
    pub checkpoint: Option<Vec<f32>>,
}

/// Parameters of one round's `ModelUpdate` across the participating edges.
pub(crate) struct EdgeBlockParams<'a> {
    pub problem: &'a FederatedProblem,
    /// The global model broadcast by the cloud at the start of the round.
    pub w_start: &'a [f32],
    /// Distinct participating edge ids.
    pub edges: &'a [usize],
    pub tau1: usize,
    pub tau2: usize,
    pub eta_w: f32,
    pub batch_size: usize,
    /// Checkpoint index `(c1, c2)`, or `None` for minimization methods.
    pub checkpoint: Option<(usize, usize)>,
    /// Codec applied to client model uploads (the Hier-Local-QSGD
    /// extension); downlink broadcasts stay full precision.
    pub quantizer: Quantizer,
    /// Fault oracle deciding per-block client crashes and straggler fates
    /// (keyed streams, so deterministic and independent of execution
    /// order). A crashed client neither computes nor uploads for that
    /// block; a straggler past the deadline computes but its late upload
    /// is discarded and not metered. The edge averages the survivors, and
    /// an edge whose clients all dropped keeps its block-start model.
    pub fault: &'a FaultInjector,
    /// Hierarchy level of these clients' subtree (0 = the three-layer
    /// client-edge-cloud case, preserving the legacy dropout streams;
    /// deeper multi-level trees pass their depth so equal block indices at
    /// different levels draw independent fault bits).
    pub level: usize,
    /// Whether this call records `ClientEdge` synchronisation rounds.
    /// Callers that invoke `run_edge_blocks` once per edge (the
    /// heterogeneous-rate path) set this false and record the round count
    /// themselves, because concurrent edges share sync windows: metering
    /// each edge's blocks separately would count the same wall-clock
    /// window once per edge.
    pub record_rounds: bool,
    /// Training round `k` (keys the RNG streams).
    pub round: usize,
    pub seed: u64,
    pub meter: &'a CommMeter,
    pub par: Parallelism,
    /// Round scheduling strategy (see module docs). Both engines are
    /// bit-identical; `Barrier` exists as the benchmark baseline and as a
    /// cross-check in the determinism suite.
    pub engine: ExecEngine,
    pub trace: &'a Trace,
    pub telemetry: &'a Telemetry,
    /// Span profiler. Per-edge chain durations are measured inside the
    /// workers (wall-clock only — never consulted by the computation) and
    /// recorded after the join, in edge order, so profiled span streams
    /// are identical in shape across engines and parallelism modes.
    pub profile: &'a Profiler,
}

/// Per-round fault and survivor schedule, computed before any client work.
///
/// The fault oracle draws from keyed streams, so its decisions depend only
/// on `(block, level, client)` — hoisting them out of the parallel region
/// changes nothing about the outcome but lets the chained engine run whole
/// edges without synchronising, and lets communication be metered in
/// closed form. Oracle queries and the straggler-slot accumulator are
/// driven in the same `(t2, slot)` order the barrier engine uses, so
/// fault statistics stay bit-identical.
struct RoundSchedule {
    /// `alive[t2 * n_slots + ei * n0 + c]` — does that client's upload
    /// survive block `t2`?
    alive: Vec<bool>,
    /// Surviving uploads per block (`[t2]`).
    block_survivors: Vec<u64>,
}

impl RoundSchedule {
    fn survivors_of_edge(&self, n0: usize, ne: usize, t2: usize, ei: usize) -> usize {
        let base = t2 * ne * n0 + ei * n0;
        self.alive[base..base + n0].iter().filter(|&&a| a).count()
    }
}

fn compute_schedule(p: &EdgeBlockParams<'_>) -> RoundSchedule {
    let n0 = p.problem.clients_per_edge();
    let ne = p.edges.len();
    let topo = p.problem.topology();
    let n_slots = ne * n0;
    let mut alive = vec![false; p.tau2 * n_slots];
    let mut block_survivors = vec![0u64; p.tau2];
    for t2 in 0..p.tau2 {
        let block_tag = (p.round * p.tau2 + t2) as u64;
        // Which clients survive this block: a client is cut by a crash or
        // by straggling past the deadline; an in-deadline straggler
        // contributes but stretches the block's shared sync window.
        let mut max_slow = 1.0_f64;
        for slot in 0..n_slots {
            let edge = p.edges[slot / n0];
            let client = topo.client_id(edge, slot % n0);
            let a = if !p.fault.client_alive(block_tag, p.level, client) {
                false
            } else {
                match p.fault.straggler(block_tag, p.level, client) {
                    StragglerFate::Missed => false,
                    StragglerFate::Slow(s) => {
                        max_slow = max_slow.max(s);
                        true
                    }
                    StragglerFate::OnTime => true,
                }
            };
            alive[t2 * n_slots + slot] = a;
            block_survivors[t2] += u64::from(a);
        }
        if max_slow > 1.0 {
            // The synchronous block waits for its slowest in-deadline
            // straggler: τ1 nominal slots stretch by the slowdown factor.
            p.fault
                .add_straggler_slots((max_slow - 1.0) * p.tau1 as f64);
        }
    }
    RoundSchedule {
        alive,
        block_survivors,
    }
}

/// Meter the whole round's client-edge traffic in closed form: one
/// broadcast to every client per block, one upload per surviving client
/// per block (doubled in the checkpoint block, whose model is piggybacked
/// on the gather), and `τ2` synchronisation rounds. Byte-for-byte the
/// same totals as the barrier engine's per-block calls, in a handful of
/// atomic updates.
fn meter_round(p: &EdgeBlockParams<'_>, schedule: &RoundSchedule) {
    let d = p.problem.num_params() as u64;
    let n_slots = (p.edges.len() * p.problem.clients_per_edge()) as u64;
    p.meter
        .record_broadcast(Link::ClientEdge, d, p.tau2 as u64 * n_slots);
    let unit = p.quantizer.wire_floats(d as usize);
    let cp_block = p.checkpoint.map(|(_, c2)| c2);
    let mut plain_survivors = 0u64;
    for (t2, &s) in schedule.block_survivors.iter().enumerate() {
        if cp_block == Some(t2) {
            p.meter.record_gather(Link::ClientEdge, 2 * unit, s);
        } else {
            plain_survivors += s;
        }
    }
    p.meter
        .record_gather(Link::ClientEdge, unit, plain_survivors);
    if p.record_rounds {
        p.meter.record_rounds(Link::ClientEdge, p.tau2 as u64);
    }
}

/// Replay the round's protocol events after the parallel join, in the
/// exact order the barrier engine emits them while running: per block,
/// `LocalSteps` for every survivor in slot order, then per edge (with at
/// least one survivor) the checkpoint capture, the aggregation event, and
/// the telemetry record.
fn replay_events(p: &EdgeBlockParams<'_>, schedule: &RoundSchedule) {
    let n0 = p.problem.clients_per_edge();
    let ne = p.edges.len();
    let topo = p.problem.topology();
    for t2 in 0..p.tau2 {
        let is_cp_block = p.checkpoint.map(|(_, c2)| c2 == t2).unwrap_or(false);
        for ei in 0..ne {
            for c in 0..n0 {
                if schedule.alive[t2 * ne * n0 + ei * n0 + c] {
                    p.trace.record(|| Event::LocalSteps {
                        round: p.round,
                        t2,
                        edge: p.edges[ei],
                        client: topo.client_id(p.edges[ei], c),
                        steps: p.tau1,
                    });
                }
            }
        }
        for ei in 0..ne {
            let survivors = schedule.survivors_of_edge(n0, ne, t2, ei);
            if survivors == 0 {
                continue;
            }
            if is_cp_block {
                p.trace.record(|| Event::CheckpointCaptured {
                    round: p.round,
                    edge: p.edges[ei],
                    t2,
                });
            }
            p.trace.record(|| Event::ClientEdgeAggregation {
                round: p.round,
                edge: p.edges[ei],
                t2,
            });
            p.telemetry.record(|| TelemetryEvent::BlockAggregated {
                round: p.round,
                edge: p.edges[ei],
                t2,
                survivors,
            });
        }
    }
}

/// Run `τ2` client-edge aggregation blocks on each participating edge.
///
/// All clients of all participating edges execute a block concurrently
/// (they are mutually independent); blocks are sequential, as the protocol
/// requires. Communication is metered on the `ClientEdge` link: one
/// broadcast + one gather + one round per block, with the checkpoint model
/// piggybacked on the gather of block `c2` (doubling that block's uplink
/// payload, as in the paper where clients "send along" the checkpoint).
pub(crate) fn run_edge_blocks(p: EdgeBlockParams<'_>) -> Vec<EdgeBlockOutput> {
    match p.engine {
        ExecEngine::Chained => run_edge_blocks_chained(&p),
        ExecEngine::Barrier => run_edge_blocks_barrier(&p),
    }
}

/// The chained engine: fault schedule and metering up front, then one
/// task per edge running all `τ2` blocks back to back, then event replay.
fn run_edge_blocks_chained(p: &EdgeBlockParams<'_>) -> Vec<EdgeBlockOutput> {
    let n0 = p.problem.clients_per_edge();
    let ne = p.edges.len();
    let topo = p.problem.topology();
    let schedule = compute_schedule(p);
    meter_round(p, &schedule);

    let outputs: Vec<(Vec<f32>, Option<Vec<f32>>, f64)> = {
        let schedule = &schedule;
        p.par.map_chains(ne, |ei| {
            hm_nn::with_scratch(|scratch| {
                let chain_timer = p.profile.start();
                let edge = p.edges[ei];
                let mut model = p.w_start.to_vec();
                let mut checkpoint: Option<Vec<f32>> = None;
                // Per-client upload buffers, reused across blocks. An
                // empty model slot means "dropped this block" (models are
                // never zero-length), which is what the aggregation's
                // presence test reads.
                let mut client_w: Vec<Vec<f32>> = vec![Vec::new(); n0];
                let mut client_cp: Vec<Option<Vec<f32>>> = vec![None; n0];
                for t2 in 0..p.tau2 {
                    let is_cp_block = p.checkpoint.map(|(_, c2)| c2 == t2).unwrap_or(false);
                    let cp_after = p.checkpoint.and_then(|(c1, c2)| (c2 == t2).then_some(c1));
                    let base = t2 * ne * n0 + ei * n0;
                    for c in 0..n0 {
                        client_cp[c] = None;
                        if !schedule.alive[base + c] {
                            client_w[c].clear();
                            continue;
                        }
                        let client = topo.client_id(edge, c);
                        let mut rng = StreamRng::for_key(StreamKey::new(
                            p.seed,
                            Purpose::Batch,
                            (p.round * p.tau2 + t2) as u64,
                            client as u64,
                        ));
                        let mut cp_out = local_sgd_into(
                            &*p.problem.model,
                            p.problem.client_data(edge, c),
                            &model,
                            &mut client_w[c],
                            p.tau1,
                            p.eta_w,
                            p.batch_size,
                            &p.problem.w_domain,
                            &mut rng,
                            cp_after,
                            scratch,
                        );
                        // Uplink codec: quantize the *update delta* against
                        // the block-start model the edge already holds (as
                        // in Hier-Local-QSGD — deltas are small, so coarse
                        // grids stay accurate), then reconstruct the model
                        // the edge decodes.
                        if p.quantizer != Quantizer::Exact {
                            let mut qrng = StreamRng::for_key(StreamKey::new(
                                p.seed,
                                Purpose::Quantize,
                                (p.round * p.tau2 + t2) as u64,
                                client as u64,
                            ));
                            quantize_delta(&p.quantizer, &model, &mut client_w[c], &mut qrng);
                            if let Some(cp) = cp_out.as_mut() {
                                quantize_delta(&p.quantizer, &model, cp, &mut qrng);
                            }
                        }
                        client_cp[c] = cp_out;
                    }
                    // Edge-side aggregation over survivors, in slot order
                    // (the bit-exact fold order of DESIGN.md §7). With no
                    // survivors the edge keeps its block-start model (and
                    // captures no checkpoint).
                    let survivors = vecops::average_present_into(
                        &client_w,
                        |w| (!w.is_empty()).then_some(w.as_slice()),
                        &mut model,
                    );
                    if survivors == 0 {
                        continue;
                    }
                    if is_cp_block {
                        let mut cp = vec![0.0_f32; model.len()];
                        let got =
                            vecops::average_present_into(&client_cp, Option::as_deref, &mut cp);
                        assert_eq!(got, survivors, "checkpoint block must return checkpoints");
                        checkpoint = Some(cp);
                    }
                }
                (model, checkpoint, chain_timer.elapsed_s())
            })
        })
    };

    replay_events(p, &schedule);
    for (ei, (_, _, chain_s)) in outputs.iter().enumerate() {
        p.profile.record_secs(
            p.telemetry,
            Phase::LocalSgdChain,
            Some(p.round),
            Some(p.edges[ei]),
            *chain_s,
        );
    }

    p.edges
        .iter()
        .zip(outputs)
        .map(|(&edge, (w_final, checkpoint, _))| finish_edge(p, edge, w_final, checkpoint))
        .collect()
}

/// Checkpoint fallback shared by both engines: if every client of an edge
/// dropped during the checkpoint block, fall back to the edge's final
/// model so Phase 2 still has an estimate to evaluate (slightly biased,
/// but only in a failure corner the paper's protocol does not define).
fn finish_edge(
    p: &EdgeBlockParams<'_>,
    edge: usize,
    w_final: Vec<f32>,
    checkpoint: Option<Vec<f32>>,
) -> EdgeBlockOutput {
    let checkpoint = match (checkpoint, p.checkpoint) {
        (None, Some(_)) => Some(w_final.clone()),
        (cp, _) => cp,
    };
    EdgeBlockOutput {
        edge,
        w_final,
        checkpoint,
    }
}

/// The barrier engine: the pre-chain scheduler, frozen as the reference
/// implementation the chained engine is benchmarked and cross-checked
/// against. One global fork/join per block, per-call training scratch
/// ([`local_sgd_fresh`]), per-block result and survivor vectors.
fn run_edge_blocks_barrier(p: &EdgeBlockParams<'_>) -> Vec<EdgeBlockOutput> {
    let n0 = p.problem.clients_per_edge();
    let d = p.problem.num_params() as u64;
    let topo = p.problem.topology();
    let mut edge_models: Vec<Vec<f32>> = p.edges.iter().map(|_| p.w_start.to_vec()).collect();
    let mut edge_checkpoints: Vec<Option<Vec<f32>>> = vec![None; p.edges.len()];
    // Per-edge accumulated work time across blocks (client tasks + the
    // edge's aggregation fold), so the barrier engine emits the same
    // one-span-per-edge stream as the chained engine's whole-chain timer.
    let mut chain_s = vec![0.0_f64; p.edges.len()];

    for t2 in 0..p.tau2 {
        let is_cp_block = p.checkpoint.map(|(_, c2)| c2 == t2).unwrap_or(false);
        let cp_after = p.checkpoint.and_then(|(c1, c2)| (c2 == t2).then_some(c1));
        let block_tag = (p.round * p.tau2 + t2) as u64;
        let mut max_slow = 1.0_f64;
        let alive: Vec<bool> = (0..p.edges.len() * n0)
            .map(|slot| {
                let edge = p.edges[slot / n0];
                let client = topo.client_id(edge, slot % n0);
                if !p.fault.client_alive(block_tag, p.level, client) {
                    return false;
                }
                match p.fault.straggler(block_tag, p.level, client) {
                    StragglerFate::Missed => false,
                    StragglerFate::Slow(s) => {
                        max_slow = max_slow.max(s);
                        true
                    }
                    StragglerFate::OnTime => true,
                }
            })
            .collect();
        if max_slow > 1.0 {
            p.fault
                .add_straggler_slots((max_slow - 1.0) * p.tau1 as f64);
        }
        // Edge broadcasts its block-start model to its clients.
        p.meter
            .record_broadcast(Link::ClientEdge, d, (p.edges.len() * n0) as u64);

        // All (edge, client) pairs run τ1 local steps concurrently, with a
        // full join before the edge aggregations.
        let tasks: Vec<(usize, usize)> = (0..p.edges.len())
            .flat_map(|ei| (0..n0).map(move |c| (ei, c)))
            .filter(|&(ei, c)| alive[ei * n0 + c])
            .collect();
        let results_alive: Vec<(Vec<f32>, Option<Vec<f32>>, f64)> = {
            let edge_models = &edge_models;
            p.par.map_ref(&tasks, |&(ei, c)| {
                let task_timer = p.profile.start();
                let edge = p.edges[ei];
                let client = topo.client_id(edge, c);
                let mut rng = StreamRng::for_key(StreamKey::new(
                    p.seed,
                    Purpose::Batch,
                    (p.round * p.tau2 + t2) as u64,
                    client as u64,
                ));
                let (mut w_out, mut cp_out) = local_sgd_fresh(
                    &*p.problem.model,
                    p.problem.client_data(edge, c),
                    &edge_models[ei],
                    p.tau1,
                    p.eta_w,
                    p.batch_size,
                    &p.problem.w_domain,
                    &mut rng,
                    cp_after,
                );
                if p.quantizer != Quantizer::Exact {
                    let mut qrng = StreamRng::for_key(StreamKey::new(
                        p.seed,
                        Purpose::Quantize,
                        (p.round * p.tau2 + t2) as u64,
                        client as u64,
                    ));
                    let base = &edge_models[ei];
                    quantize_delta(&p.quantizer, base, &mut w_out, &mut qrng);
                    if let Some(cp) = cp_out.as_mut() {
                        quantize_delta(&p.quantizer, base, cp, &mut qrng);
                    }
                }
                (w_out, cp_out, task_timer.elapsed_s())
            })
        };
        // Scatter results back to (edge, client) slots; dropped slots None.
        let mut results: Vec<Option<ClientBlockResult>> =
            (0..p.edges.len() * n0).map(|_| None).collect();
        for (&(ei, c), (w_out, cp_out, secs)) in tasks.iter().zip(results_alive) {
            p.trace.record(|| Event::LocalSteps {
                round: p.round,
                t2,
                edge: p.edges[ei],
                client: topo.client_id(p.edges[ei], c),
                steps: p.tau1,
            });
            chain_s[ei] += secs;
            results[ei * n0 + c] = Some((w_out, cp_out));
        }

        // Surviving clients upload their (possibly quantized) models, plus
        // the checkpoint in block c2.
        let unit = p.quantizer.wire_floats(d as usize);
        let floats_up = if is_cp_block { 2 * unit } else { unit };
        let survivors = alive.iter().filter(|&&a| a).count() as u64;
        p.meter
            .record_gather(Link::ClientEdge, floats_up, survivors);
        if p.record_rounds {
            p.meter.record_round(Link::ClientEdge);
        }

        // Edge-side aggregation over survivors (deterministic order:
        // clients are indexed).
        for (ei, model) in edge_models.iter_mut().enumerate() {
            let agg_timer = p.profile.start();
            let client_ws: Vec<&[f32]> = (0..n0)
                .filter_map(|c| results[ei * n0 + c].as_ref().map(|(w, _)| w.as_slice()))
                .collect();
            // An edge with no surviving clients keeps its block-start
            // model (and captures no checkpoint from this block).
            if !client_ws.is_empty() {
                vecops::average_into(&client_ws, model);
                if is_cp_block {
                    let cps: Vec<&[f32]> = (0..n0)
                        .filter_map(|c| {
                            results[ei * n0 + c].as_ref().map(|(_, cp)| {
                                cp.as_deref()
                                    .expect("checkpoint block must return checkpoints")
                            })
                        })
                        .collect();
                    let mut cp = vec![0.0_f32; cps[0].len()];
                    vecops::average_into(&cps, &mut cp);
                    edge_checkpoints[ei] = Some(cp);
                    p.trace.record(|| Event::CheckpointCaptured {
                        round: p.round,
                        edge: p.edges[ei],
                        t2,
                    });
                }
                p.trace.record(|| Event::ClientEdgeAggregation {
                    round: p.round,
                    edge: p.edges[ei],
                    t2,
                });
                p.telemetry.record(|| TelemetryEvent::BlockAggregated {
                    round: p.round,
                    edge: p.edges[ei],
                    t2,
                    survivors: client_ws.len(),
                });
            }
            chain_s[ei] += agg_timer.elapsed_s();
        }
    }

    for (ei, &edge) in p.edges.iter().enumerate() {
        p.profile.record_secs(
            p.telemetry,
            Phase::LocalSgdChain,
            Some(p.round),
            Some(edge),
            chain_s[ei],
        );
    }

    p.edges
        .iter()
        .zip(edge_models)
        .zip(edge_checkpoints)
        .map(|((&edge, w_final), checkpoint)| finish_edge(p, edge, w_final, checkpoint))
        .collect()
}

/// Quantize `v` as a delta against `base` (which the receiver already
/// holds), then reconstruct: `v ← base + Q(v − base)`. This is the
/// Hier-Local-QSGD upload codec — update deltas shrink with the learning
/// rate, so even coarse grids quantize them accurately.
pub(crate) fn quantize_delta(
    q: &Quantizer,
    base: &[f32],
    v: &mut [f32],
    rng: &mut hm_data::StreamRng,
) {
    debug_assert_eq!(base.len(), v.len());
    for (x, &b) in v.iter_mut().zip(base) {
        *x -= b;
    }
    q.apply(v, rng);
    for (x, &b) in v.iter_mut().zip(base) {
        *x += b;
    }
}

/// Count multiplicities of a with-replacement sample, returning
/// `(distinct_ids, multiplicities)` with distinct ids in first-seen order.
pub(crate) fn multiplicities(sampled: &[usize]) -> (Vec<usize>, Vec<usize>) {
    let mut distinct = Vec::new();
    let mut counts = Vec::new();
    for &e in sampled {
        match distinct.iter().position(|&x| x == e) {
            Some(i) => counts[i] += 1,
            None => {
                distinct.push(e);
                counts.push(1);
            }
        }
    }
    (distinct, counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hm_data::scenarios::tiny_problem;
    use hm_simnet::FaultPlan;

    fn meter_and_trace() -> (CommMeter, Trace) {
        (CommMeter::new(), Trace::enabled())
    }

    #[test]
    fn multiplicities_counts() {
        let (d, c) = multiplicities(&[3, 1, 3, 3, 0]);
        assert_eq!(d, vec![3, 1, 0]);
        assert_eq!(c, vec![3, 1, 1]);
        assert_eq!(c.iter().sum::<usize>(), 5);
    }

    #[test]
    fn edge_blocks_run_and_meter() {
        let sc = tiny_problem(3, 2, 1);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let (meter, trace) = meter_and_trace();
        let fi = FaultInjector::none(42);
        let w0 = vec![0.0; fp.num_params()];
        let out = run_edge_blocks(EdgeBlockParams {
            problem: &fp,
            w_start: &w0,
            edges: &[0, 2],
            tau1: 2,
            tau2: 3,
            eta_w: 0.1,
            batch_size: 2,
            checkpoint: Some((1, 1)),
            quantizer: Quantizer::Exact,
            fault: &fi,
            level: 0,
            record_rounds: true,
            round: 0,
            seed: 42,
            meter: &meter,
            par: Parallelism::Sequential,
            engine: ExecEngine::Chained,
            trace: &trace,
            telemetry: &Telemetry::disabled(),
            profile: &Profiler::disabled(),
        });
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].edge, 0);
        assert_eq!(out[1].edge, 2);
        // Models moved away from zero, and checkpoints were captured.
        for o in &out {
            assert!(hm_tensor::vecops::norm2(&o.w_final) > 0.0);
            assert!(o.checkpoint.is_some());
        }
        let s = meter.snapshot();
        // 3 blocks → 3 client-edge rounds, zero cloud rounds here.
        assert_eq!(s.rounds(Link::ClientEdge), 3);
        assert_eq!(s.cloud_rounds(), 0);
        // Downlink: 3 blocks × 2 edges × 2 clients × d floats.
        let d = fp.num_params() as u64;
        assert_eq!(s.downlink_floats(Link::ClientEdge), 3 * 2 * 2 * d);
        // Uplink: (2 plain blocks × d + 1 checkpoint block × 2d) × 4 clients.
        assert_eq!(s.uplink_floats(Link::ClientEdge), (2 * d + 2 * d) * 4);
        // Trace recorded τ2 aggregations per edge.
        let events = trace.events();
        let aggs = events
            .iter()
            .filter(|e| matches!(e, Event::ClientEdgeAggregation { .. }))
            .count();
        assert_eq!(aggs, 2 * 3);
    }

    #[test]
    fn checkpoint_at_block_start_equals_block_model() {
        // With c1 = 0, the checkpoint is the block-start model; for c2 = 0
        // that is the broadcast global model itself.
        let sc = tiny_problem(2, 2, 3);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let (meter, trace) = (CommMeter::new(), Trace::disabled());
        let fi = FaultInjector::none(7);
        let w0 = vec![0.25; fp.num_params()];
        let out = run_edge_blocks(EdgeBlockParams {
            problem: &fp,
            w_start: &w0,
            edges: &[1],
            tau1: 3,
            tau2: 2,
            eta_w: 0.05,
            batch_size: 2,
            checkpoint: Some((0, 0)),
            quantizer: Quantizer::Exact,
            fault: &fi,
            level: 0,
            record_rounds: true,
            round: 0,
            seed: 7,
            meter: &meter,
            par: Parallelism::Sequential,
            engine: ExecEngine::Chained,
            trace: &trace,
            telemetry: &Telemetry::disabled(),
            profile: &Profiler::disabled(),
        });
        assert_eq!(out[0].checkpoint.as_deref(), Some(w0.as_slice()));
    }

    /// Run the same round under a given engine/parallelism pair, returning
    /// outputs plus the observables both engines must agree on.
    fn run_one(
        fp: &FederatedProblem,
        fault: FaultPlan,
        engine: ExecEngine,
        par: Parallelism,
        quantizer: Quantizer,
    ) -> (Vec<EdgeBlockOutput>, hm_simnet::CommStats, Vec<Event>) {
        let meter = CommMeter::new();
        let trace = Trace::enabled();
        let fi = FaultInjector::new(11, fault);
        let out = run_edge_blocks(EdgeBlockParams {
            problem: fp,
            w_start: &vec![0.0; fp.num_params()],
            edges: &[0, 1, 2],
            tau1: 2,
            tau2: 3,
            eta_w: 0.1,
            batch_size: 2,
            checkpoint: Some((1, 1)),
            quantizer,
            fault: &fi,
            level: 0,
            record_rounds: true,
            round: 3,
            seed: 11,
            meter: &meter,
            par,
            engine,
            trace: &trace,
            telemetry: &Telemetry::disabled(),
            profile: &Profiler::disabled(),
        });
        (out, meter.snapshot(), trace.events())
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let sc = tiny_problem(3, 3, 9);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        for engine in [ExecEngine::Chained, ExecEngine::Barrier] {
            let (a, am, ae) = run_one(
                &fp,
                FaultPlan::default(),
                engine,
                Parallelism::Sequential,
                Quantizer::Exact,
            );
            let (b, bm, be) = run_one(
                &fp,
                FaultPlan::default(),
                engine,
                Parallelism::Rayon,
                Quantizer::Exact,
            );
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.w_final, y.w_final);
                assert_eq!(x.checkpoint, y.checkpoint);
            }
            assert_eq!(am, bm);
            assert_eq!(ae, be);
        }
    }

    #[test]
    fn chained_and_barrier_engines_are_bit_identical() {
        // The tentpole invariant at the unit level: identical models,
        // checkpoints, meter totals, and trace event *order* across
        // engines, under faults and quantization too.
        let sc = tiny_problem(3, 3, 9);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let chaotic = FaultPlan::preset("chaos").unwrap();
        for (fault, quantizer) in [
            (FaultPlan::default(), Quantizer::Exact),
            (chaotic.clone(), Quantizer::Exact),
            (chaotic, Quantizer::Stochastic { bits: 4 }),
        ] {
            for par in [Parallelism::Sequential, Parallelism::Rayon] {
                let (a, am, ae) = run_one(&fp, fault.clone(), ExecEngine::Chained, par, quantizer);
                let (b, bm, be) = run_one(&fp, fault.clone(), ExecEngine::Barrier, par, quantizer);
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.edge, y.edge);
                    assert_eq!(x.w_final, y.w_final);
                    assert_eq!(x.checkpoint, y.checkpoint);
                }
                assert_eq!(am, bm, "meter totals diverged");
                assert_eq!(ae, be, "trace event order diverged");
            }
        }
    }
}
