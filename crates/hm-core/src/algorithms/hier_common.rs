//! Shared machinery for the three-layer algorithms (HierMinimax and
//! HierFAVG): the `ModelUpdate` procedure — `τ2` client-edge aggregation
//! blocks of `τ1` local SGD steps each — with optional checkpoint capture.

use crate::localsgd::local_sgd;
use crate::problem::FederatedProblem;
use hm_data::rng::{Purpose, StreamKey, StreamRng};
use hm_simnet::trace::{Event, Trace};
use hm_simnet::{CommMeter, FaultInjector, Link, Parallelism, Quantizer, StragglerFate};
use hm_telemetry::{Telemetry, TelemetryEvent};
use hm_tensor::vecops;

/// A client's block output: the updated model and, in the checkpoint
/// block, the checkpoint snapshot.
type ClientBlockResult = (Vec<f32>, Option<Vec<f32>>);

/// Result of one edge server's `ModelUpdate` procedure.
#[derive(Debug, Clone)]
pub(crate) struct EdgeBlockOutput {
    /// The edge id this output belongs to.
    pub edge: usize,
    /// `w_e^{(k, τ2)}` — the edge model after all aggregation blocks.
    pub w_final: Vec<f32>,
    /// `w_e^{(k, c2, c1)}` — the aggregated checkpoint model, when a
    /// checkpoint index was supplied.
    pub checkpoint: Option<Vec<f32>>,
}

/// Parameters of one round's `ModelUpdate` across the participating edges.
pub(crate) struct EdgeBlockParams<'a> {
    pub problem: &'a FederatedProblem,
    /// The global model broadcast by the cloud at the start of the round.
    pub w_start: &'a [f32],
    /// Distinct participating edge ids.
    pub edges: &'a [usize],
    pub tau1: usize,
    pub tau2: usize,
    pub eta_w: f32,
    pub batch_size: usize,
    /// Checkpoint index `(c1, c2)`, or `None` for minimization methods.
    pub checkpoint: Option<(usize, usize)>,
    /// Codec applied to client model uploads (the Hier-Local-QSGD
    /// extension); downlink broadcasts stay full precision.
    pub quantizer: Quantizer,
    /// Fault oracle deciding per-block client crashes and straggler fates
    /// (keyed streams, so deterministic and independent of execution
    /// order). A crashed client neither computes nor uploads for that
    /// block; a straggler past the deadline computes but its late upload
    /// is discarded and not metered. The edge averages the survivors, and
    /// an edge whose clients all dropped keeps its block-start model.
    pub fault: &'a FaultInjector,
    /// Hierarchy level of these clients' subtree (0 = the three-layer
    /// client-edge-cloud case, preserving the legacy dropout streams;
    /// deeper multi-level trees pass their depth so equal block indices at
    /// different levels draw independent fault bits).
    pub level: usize,
    /// Whether this call records `ClientEdge` synchronisation rounds.
    /// Callers that invoke `run_edge_blocks` once per edge (the
    /// heterogeneous-rate path) set this false and record the round count
    /// themselves, because concurrent edges share sync windows: metering
    /// each edge's blocks separately would count the same wall-clock
    /// window once per edge.
    pub record_rounds: bool,
    /// Training round `k` (keys the RNG streams).
    pub round: usize,
    pub seed: u64,
    pub meter: &'a CommMeter,
    pub par: Parallelism,
    pub trace: &'a Trace,
    pub telemetry: &'a Telemetry,
}

/// Run `τ2` client-edge aggregation blocks on each participating edge.
///
/// All clients of all participating edges execute a block concurrently
/// (they are mutually independent); blocks are sequential, as the protocol
/// requires. Communication is metered on the `ClientEdge` link: one
/// broadcast + one gather + one round per block, with the checkpoint model
/// piggybacked on the gather of block `c2` (doubling that block's uplink
/// payload, as in the paper where clients "send along" the checkpoint).
pub(crate) fn run_edge_blocks(p: EdgeBlockParams<'_>) -> Vec<EdgeBlockOutput> {
    let n0 = p.problem.clients_per_edge();
    let d = p.problem.num_params() as u64;
    let topo = p.problem.topology();
    let mut edge_models: Vec<Vec<f32>> = p.edges.iter().map(|_| p.w_start.to_vec()).collect();
    let mut edge_checkpoints: Vec<Option<Vec<f32>>> = vec![None; p.edges.len()];

    for t2 in 0..p.tau2 {
        let is_cp_block = p.checkpoint.map(|(_, c2)| c2 == t2).unwrap_or(false);
        let cp_after = p.checkpoint.and_then(|(c1, c2)| (c2 == t2).then_some(c1));
        let block_tag = (p.round * p.tau2 + t2) as u64;
        // Which clients survive this block (keyed streams, so deterministic
        // and independent of execution order): a client is cut by a crash
        // or by straggling past the deadline; an in-deadline straggler
        // contributes but stretches the block's shared sync window.
        let mut max_slow = 1.0_f64;
        let alive: Vec<bool> = (0..p.edges.len() * n0)
            .map(|slot| {
                let edge = p.edges[slot / n0];
                let client = topo.client_id(edge, slot % n0);
                if !p.fault.client_alive(block_tag, p.level, client) {
                    return false;
                }
                match p.fault.straggler(block_tag, p.level, client) {
                    StragglerFate::Missed => false,
                    StragglerFate::Slow(s) => {
                        max_slow = max_slow.max(s);
                        true
                    }
                    StragglerFate::OnTime => true,
                }
            })
            .collect();
        if max_slow > 1.0 {
            // The synchronous block waits for its slowest in-deadline
            // straggler: τ1 nominal slots stretch by the slowdown factor.
            p.fault
                .add_straggler_slots((max_slow - 1.0) * p.tau1 as f64);
        }
        // Edge broadcasts its block-start model to its clients.
        p.meter
            .record_broadcast(Link::ClientEdge, d, (p.edges.len() * n0) as u64);

        // All (edge, client) pairs run τ1 local steps concurrently.
        let tasks: Vec<(usize, usize)> = (0..p.edges.len())
            .flat_map(|ei| (0..n0).map(move |c| (ei, c)))
            .filter(|&(ei, c)| alive[ei * n0 + c])
            .collect();
        let results_alive: Vec<ClientBlockResult> = {
            let edge_models = &edge_models;
            p.par.map(tasks.clone(), |(ei, c)| {
                let edge = p.edges[ei];
                let client = topo.client_id(edge, c);
                let mut rng = StreamRng::for_key(StreamKey::new(
                    p.seed,
                    Purpose::Batch,
                    (p.round * p.tau2 + t2) as u64,
                    client as u64,
                ));
                let (mut w_out, mut cp_out) = local_sgd(
                    &*p.problem.model,
                    p.problem.client_data(edge, c),
                    &edge_models[ei],
                    p.tau1,
                    p.eta_w,
                    p.batch_size,
                    &p.problem.w_domain,
                    &mut rng,
                    cp_after,
                );
                // Uplink codec: quantize the *update delta* against the
                // block-start model the edge already holds (as in
                // Hier-Local-QSGD — deltas are small, so coarse grids stay
                // accurate), then reconstruct the model the edge decodes.
                if p.quantizer != Quantizer::Exact {
                    let mut qrng = StreamRng::for_key(StreamKey::new(
                        p.seed,
                        Purpose::Quantize,
                        (p.round * p.tau2 + t2) as u64,
                        client as u64,
                    ));
                    let base = &edge_models[ei];
                    quantize_delta(&p.quantizer, base, &mut w_out, &mut qrng);
                    if let Some(cp) = cp_out.as_mut() {
                        quantize_delta(&p.quantizer, base, cp, &mut qrng);
                    }
                }
                (w_out, cp_out)
            })
        };
        // Scatter results back to (edge, client) slots; dropped slots None.
        let mut results: Vec<Option<ClientBlockResult>> =
            (0..p.edges.len() * n0).map(|_| None).collect();
        for (&(ei, c), r) in tasks.iter().zip(results_alive) {
            p.trace.record(|| Event::LocalSteps {
                round: p.round,
                t2,
                edge: p.edges[ei],
                client: topo.client_id(p.edges[ei], c),
                steps: p.tau1,
            });
            results[ei * n0 + c] = Some(r);
        }

        // Surviving clients upload their (possibly quantized) models, plus
        // the checkpoint in block c2.
        let unit = p.quantizer.wire_floats(d as usize);
        let floats_up = if is_cp_block { 2 * unit } else { unit };
        let survivors = alive.iter().filter(|&&a| a).count() as u64;
        p.meter
            .record_gather(Link::ClientEdge, floats_up, survivors);
        if p.record_rounds {
            p.meter.record_round(Link::ClientEdge);
        }

        // Edge-side aggregation over survivors (deterministic order:
        // clients are indexed).
        for (ei, model) in edge_models.iter_mut().enumerate() {
            let client_ws: Vec<&[f32]> = (0..n0)
                .filter_map(|c| results[ei * n0 + c].as_ref().map(|(w, _)| w.as_slice()))
                .collect();
            if client_ws.is_empty() {
                // All clients of this edge dropped: the edge keeps its
                // block-start model (no checkpoint from this edge either).
                continue;
            }
            vecops::average_into(&client_ws, model);
            if is_cp_block {
                let cps: Vec<&[f32]> = (0..n0)
                    .filter_map(|c| {
                        results[ei * n0 + c].as_ref().map(|(_, cp)| {
                            cp.as_deref()
                                .expect("checkpoint block must return checkpoints")
                        })
                    })
                    .collect();
                let mut cp = vec![0.0_f32; cps[0].len()];
                vecops::average_into(&cps, &mut cp);
                edge_checkpoints[ei] = Some(cp);
                p.trace.record(|| Event::CheckpointCaptured {
                    round: p.round,
                    edge: p.edges[ei],
                    t2,
                });
            }
            p.trace.record(|| Event::ClientEdgeAggregation {
                round: p.round,
                edge: p.edges[ei],
                t2,
            });
            p.telemetry.record(|| TelemetryEvent::BlockAggregated {
                round: p.round,
                edge: p.edges[ei],
                t2,
                survivors: client_ws.len(),
            });
        }
    }

    p.edges
        .iter()
        .zip(edge_models)
        .zip(edge_checkpoints)
        .map(|((&edge, w_final), checkpoint)| {
            // If every client of this edge dropped during the checkpoint
            // block, fall back to the edge's final model so Phase 2 still
            // has an estimate to evaluate (slightly biased, but only in a
            // failure corner the paper's protocol does not define).
            let checkpoint = match (checkpoint, p.checkpoint) {
                (None, Some(_)) => Some(w_final.clone()),
                (cp, _) => cp,
            };
            EdgeBlockOutput {
                edge,
                w_final,
                checkpoint,
            }
        })
        .collect()
}

/// Quantize `v` as a delta against `base` (which the receiver already
/// holds), then reconstruct: `v ← base + Q(v − base)`. This is the
/// Hier-Local-QSGD upload codec — update deltas shrink with the learning
/// rate, so even coarse grids quantize them accurately.
pub(crate) fn quantize_delta(
    q: &Quantizer,
    base: &[f32],
    v: &mut [f32],
    rng: &mut hm_data::StreamRng,
) {
    debug_assert_eq!(base.len(), v.len());
    for (x, &b) in v.iter_mut().zip(base) {
        *x -= b;
    }
    q.apply(v, rng);
    for (x, &b) in v.iter_mut().zip(base) {
        *x += b;
    }
}

/// Count multiplicities of a with-replacement sample, returning
/// `(distinct_ids, multiplicities)` with distinct ids in first-seen order.
pub(crate) fn multiplicities(sampled: &[usize]) -> (Vec<usize>, Vec<usize>) {
    let mut distinct = Vec::new();
    let mut counts = Vec::new();
    for &e in sampled {
        match distinct.iter().position(|&x| x == e) {
            Some(i) => counts[i] += 1,
            None => {
                distinct.push(e);
                counts.push(1);
            }
        }
    }
    (distinct, counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hm_data::scenarios::tiny_problem;

    fn meter_and_trace() -> (CommMeter, Trace) {
        (CommMeter::new(), Trace::enabled())
    }

    #[test]
    fn multiplicities_counts() {
        let (d, c) = multiplicities(&[3, 1, 3, 3, 0]);
        assert_eq!(d, vec![3, 1, 0]);
        assert_eq!(c, vec![3, 1, 1]);
        assert_eq!(c.iter().sum::<usize>(), 5);
    }

    #[test]
    fn edge_blocks_run_and_meter() {
        let sc = tiny_problem(3, 2, 1);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let (meter, trace) = meter_and_trace();
        let fi = FaultInjector::none(42);
        let w0 = vec![0.0; fp.num_params()];
        let out = run_edge_blocks(EdgeBlockParams {
            problem: &fp,
            w_start: &w0,
            edges: &[0, 2],
            tau1: 2,
            tau2: 3,
            eta_w: 0.1,
            batch_size: 2,
            checkpoint: Some((1, 1)),
            quantizer: Quantizer::Exact,
            fault: &fi,
            level: 0,
            record_rounds: true,
            round: 0,
            seed: 42,
            meter: &meter,
            par: Parallelism::Sequential,
            trace: &trace,
            telemetry: &Telemetry::disabled(),
        });
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].edge, 0);
        assert_eq!(out[1].edge, 2);
        // Models moved away from zero, and checkpoints were captured.
        for o in &out {
            assert!(hm_tensor::vecops::norm2(&o.w_final) > 0.0);
            assert!(o.checkpoint.is_some());
        }
        let s = meter.snapshot();
        // 3 blocks → 3 client-edge rounds, zero cloud rounds here.
        assert_eq!(s.rounds(Link::ClientEdge), 3);
        assert_eq!(s.cloud_rounds(), 0);
        // Downlink: 3 blocks × 2 edges × 2 clients × d floats.
        let d = fp.num_params() as u64;
        assert_eq!(s.downlink_floats(Link::ClientEdge), 3 * 2 * 2 * d);
        // Uplink: (2 plain blocks × d + 1 checkpoint block × 2d) × 4 clients.
        assert_eq!(s.uplink_floats(Link::ClientEdge), (2 * d + 2 * d) * 4);
        // Trace recorded τ2 aggregations per edge.
        let events = trace.events();
        let aggs = events
            .iter()
            .filter(|e| matches!(e, Event::ClientEdgeAggregation { .. }))
            .count();
        assert_eq!(aggs, 2 * 3);
    }

    #[test]
    fn checkpoint_at_block_start_equals_block_model() {
        // With c1 = 0, the checkpoint is the block-start model; for c2 = 0
        // that is the broadcast global model itself.
        let sc = tiny_problem(2, 2, 3);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let (meter, trace) = (CommMeter::new(), Trace::disabled());
        let fi = FaultInjector::none(7);
        let w0 = vec![0.25; fp.num_params()];
        let out = run_edge_blocks(EdgeBlockParams {
            problem: &fp,
            w_start: &w0,
            edges: &[1],
            tau1: 3,
            tau2: 2,
            eta_w: 0.05,
            batch_size: 2,
            checkpoint: Some((0, 0)),
            quantizer: Quantizer::Exact,
            fault: &fi,
            level: 0,
            record_rounds: true,
            round: 0,
            seed: 7,
            meter: &meter,
            par: Parallelism::Sequential,
            trace: &trace,
            telemetry: &Telemetry::disabled(),
        });
        assert_eq!(out[0].checkpoint.as_deref(), Some(w0.as_slice()));
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let sc = tiny_problem(3, 3, 9);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let run = |par: Parallelism| {
            let meter = CommMeter::new();
            let trace = Trace::disabled();
            let fi = FaultInjector::none(11);
            run_edge_blocks(EdgeBlockParams {
                problem: &fp,
                w_start: &vec![0.0; fp.num_params()],
                edges: &[0, 1, 2],
                tau1: 2,
                tau2: 2,
                eta_w: 0.1,
                batch_size: 2,
                checkpoint: Some((1, 0)),
                quantizer: Quantizer::Exact,
                fault: &fi,
                level: 0,
                record_rounds: true,
                round: 3,
                seed: 11,
                meter: &meter,
                par,
                trace: &trace,
                telemetry: &Telemetry::disabled(),
            })
        };
        let a = run(Parallelism::Sequential);
        let b = run(Parallelism::Rayon);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.w_final, y.w_final);
            assert_eq!(x.checkpoint, y.checkpoint);
        }
    }
}
