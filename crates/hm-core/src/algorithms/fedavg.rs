//! FedAvg (McMahan et al., AISTATS 2017) — the standard two-layer
//! *minimization* baseline: per round, a uniform sample of clients runs
//! `τ1` local SGD steps from the broadcast model and the cloud aggregates
//! the results weighted by local dataset size — the `q_n ∝ data` choice of
//! the paper's eq. (1), which is exactly what makes minimization
//! under-serve data-poor clients. No edge servers, no fairness weights.

use super::flat_common::{client_dataset, q_to_edge_p, run_flat_clients};
use super::{finish_round, Algorithm, IterateAverage, RunOpts, RunResult};
use crate::checkpoint::{emit_preamble, CheckpointCtx, ResumedRun};
use crate::history::History;
use crate::problem::FederatedProblem;
use hm_data::rng::{Purpose, StreamKey, StreamRng};
use hm_simnet::sampling::sample_edges_uniform;
use hm_simnet::trace::Event;
use hm_simnet::{CommMeter, Link};
use hm_telemetry::{Phase, TelemetryEvent};
use hm_tensor::vecops;

/// Configuration of a FedAvg run.
#[derive(Debug, Clone)]
pub struct FedAvgConfig {
    /// Training rounds `K`.
    pub rounds: usize,
    /// Local SGD steps per round (`τ1`; the paper sets 2).
    pub tau1: usize,
    /// Participating clients per round (the experiments use `m_E · N_0` so
    /// participation matches the hierarchical methods).
    pub m_clients: usize,
    /// Model learning rate.
    pub eta_w: f32,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Shared runner options.
    pub opts: RunOpts,
}

impl Default for FedAvgConfig {
    fn default() -> Self {
        Self {
            rounds: 100,
            tau1: 2,
            m_clients: 4,
            eta_w: 0.05,
            batch_size: 4,
            opts: RunOpts::default(),
        }
    }
}

/// The FedAvg baseline.
#[derive(Debug, Clone)]
pub struct FedAvg {
    cfg: FedAvgConfig,
}

impl FedAvg {
    /// Build a runner from a config.
    pub fn new(cfg: FedAvgConfig) -> Self {
        assert!(cfg.rounds > 0 && cfg.tau1 > 0 && cfg.m_clients > 0 && cfg.batch_size > 0);
        Self { cfg }
    }
}

impl Algorithm for FedAvg {
    fn name(&self) -> &'static str {
        "FedAvg"
    }

    fn run(&self, problem: &FederatedProblem, seed: u64) -> RunResult {
        let cfg = &self.cfg;
        let n = problem.topology().total_clients();
        assert!(
            cfg.m_clients <= n,
            "m_clients {} exceeds {} clients",
            cfg.m_clients,
            n
        );
        let d = problem.num_params();
        let meter = CommMeter::new();
        let trace = cfg.opts.make_trace();
        let mut history = History::default();
        let mut avg_w = IterateAverage::new(d);
        let mut avg_p = IterateAverage::new(problem.num_edges());
        let uniform_p = problem.initial_p();

        let mut w = problem
            .model
            .init_params(&mut StreamRng::for_key(StreamKey::new(
                seed,
                Purpose::Init,
                0,
                0,
            )));

        let resumed = ResumedRun::from_opts(&cfg.opts, "FedAvg", seed, cfg.rounds);
        let start_round = match &resumed {
            Some(rr) => {
                w.clone_from(&rr.w);
                avg_w = rr.avg_w.clone();
                avg_p = rr.avg_p.clone();
                history = rr.history.clone();
                meter.restore(&rr.comm);
                rr.start_round
            }
            None => 0,
        };
        let mut comm_prev = meter.snapshot();
        let tel = &cfg.opts.telemetry;
        let run_timer = tel.timer();
        emit_preamble(
            tel,
            resumed.as_ref(),
            "FedAvg",
            cfg.rounds,
            problem.num_edges(),
            d,
            seed,
        );
        let ckpt = CheckpointCtx::new(&cfg.opts, "FedAvg", seed, cfg.rounds, true);

        let prof = &cfg.opts.profile;
        for k in start_round..cfg.rounds {
            tel.record(|| TelemetryEvent::RoundStart { round: k });
            let round_timer = tel.timer();
            let phase1_timer = tel.timer();
            let round_span = prof.start();
            let sampling_span = prof.start();
            let mut s_rng =
                StreamRng::for_key(StreamKey::new(seed, Purpose::EdgeSampling, k as u64, 0));
            let sampled = sample_edges_uniform(n, cfg.m_clients, &mut s_rng);
            trace.record(|| Event::Phase1EdgesSampled {
                round: k,
                edges: sampled.clone(),
            });
            // Two-layer method: the "edges" here are sampled client ids.
            tel.record(|| TelemetryEvent::Phase1Sampled {
                round: k,
                edges: sampled.clone(),
                checkpoint: None,
            });
            prof.record(tel, Phase::Phase1Sampling, Some(k), None, sampling_span);

            meter.record_broadcast(Link::ClientCloud, d as u64, sampled.len() as u64);
            let sgd_span = prof.start();
            let results = run_flat_clients(
                problem,
                &w,
                &sampled,
                cfg.tau1,
                cfg.eta_w,
                cfg.batch_size,
                k,
                seed,
                cfg.opts.parallelism,
                None,
            );
            prof.record(tel, Phase::LocalSgdChain, Some(k), None, sgd_span);
            meter.record_gather(Link::ClientCloud, d as u64, sampled.len() as u64);
            meter.record_round(Link::ClientCloud);

            // Aggregate weighted by local data size (q_n ∝ |D_n|,
            // normalised over the sampled set).
            let agg_span = prof.start();
            let sizes: Vec<f64> = sampled
                .iter()
                .map(|&c| client_dataset(problem, c).len() as f64)
                .collect();
            let total: f64 = sizes.iter().sum();
            let weights: Vec<f64> = sizes.iter().map(|s| s / total).collect();
            let models: Vec<&[f32]> = results.iter().map(|(m, _)| m.as_slice()).collect();
            vecops::weighted_average_into(&models, &weights, &mut w);
            prof.record(tel, Phase::Aggregation, Some(k), None, agg_span);
            trace.record(|| Event::GlobalAggregation { round: k });
            trace.record(|| Event::GlobalModel {
                round: k,
                w: w.clone(),
            });
            tel.record(|| TelemetryEvent::Phase1Done {
                round: k,
                elapsed_s: phase1_timer.elapsed_s(),
            });
            let comm_now = meter.snapshot();
            let slots_done = (k + 1) * cfg.tau1;
            tel.record(|| TelemetryEvent::RoundEnd {
                round: k,
                slots: slots_done,
                comm_delta: comm_now.since(&comm_prev),
                comm_total: comm_now,
                sim_s: tel.sim_seconds(&comm_now, slots_done, 1),
                elapsed_s: round_timer.elapsed_s(),
            });
            comm_prev = comm_now;
            prof.record(tel, Phase::Round, Some(k), None, round_span);

            finish_round(
                problem,
                &cfg.opts,
                &mut history,
                &mut avg_w,
                &mut avg_p,
                k,
                cfg.rounds,
                cfg.tau1,
                comm_now,
                &w,
                uniform_p.clone(),
            );
            ckpt.after_round(
                k,
                &w,
                &uniform_p,
                &avg_w,
                &avg_p,
                &history,
                comm_now,
                Default::default(),
                vec![],
            );
        }

        let comm_final = meter.snapshot();
        let total_slots = cfg.rounds * cfg.tau1;
        prof.emit_summary(tel);
        tel.record(|| TelemetryEvent::RunEnd {
            rounds: cfg.rounds,
            slots: total_slots,
            comm_total: comm_final,
            sim_s: tel.sim_seconds(&comm_final, total_slots, 1),
            elapsed_s: run_timer.elapsed_s(),
        });
        tel.flush();

        let final_p = q_to_edge_p(problem, &vec![1.0 / n as f32; n]);
        RunResult {
            final_w: w,
            avg_w: avg_w.mean(),
            final_p,
            avg_p: avg_p.mean(),
            history,
            comm: comm_final,
            trace,
            faults: Default::default(),
            quarantine: Default::default(),
            churn: Default::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hm_data::scenarios::tiny_problem;
    use hm_simnet::Parallelism;

    fn quick_cfg(rounds: usize) -> FedAvgConfig {
        FedAvgConfig {
            rounds,
            tau1: 2,
            m_clients: 4,
            eta_w: 0.1,
            batch_size: 2,
            opts: RunOpts {
                eval_every: 1,
                parallelism: Parallelism::Sequential,
                trace: false,
                ..Default::default()
            },
        }
    }

    #[test]
    fn one_cloud_round_per_training_round() {
        let sc = tiny_problem(3, 2, 1);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let r = FedAvg::new(quick_cfg(6)).run(&fp, 42);
        assert_eq!(r.comm.cloud_rounds(), 6);
        // Two-layer: nothing on edge links.
        assert_eq!(r.comm.rounds(Link::ClientEdge), 0);
        assert_eq!(r.comm.rounds(Link::EdgeCloud), 0);
        assert_eq!(r.history.rounds.last().unwrap().slots_done, 12);
    }

    #[test]
    fn training_reduces_objective() {
        let sc = tiny_problem(3, 2, 3);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let w0 = vec![0.0; fp.num_params()];
        let p0 = fp.initial_p();
        let before = fp.objective(&w0, &p0);
        let mut cfg = quick_cfg(40);
        cfg.m_clients = 6;
        let r = FedAvg::new(cfg).run(&fp, 5);
        assert!(fp.objective(&r.final_w, &p0) < before * 0.8);
    }

    #[test]
    fn deterministic_across_parallelism() {
        let sc = tiny_problem(3, 2, 4);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let mut cfg = quick_cfg(3);
        let a = FedAvg::new(cfg.clone()).run(&fp, 7);
        cfg.opts.parallelism = Parallelism::Rayon;
        let b = FedAvg::new(cfg).run(&fp, 7);
        assert_eq!(a.final_w, b.final_w);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn too_many_clients_panics() {
        let sc = tiny_problem(2, 2, 1);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let mut cfg = quick_cfg(1);
        cfg.m_clients = 100;
        let _ = FedAvg::new(cfg).run(&fp, 0);
    }
}
