//! Per-run membership-churn controller for the hierarchical run loops.
//!
//! Wraps the simulator's [`ActiveTopology`] (the membership state machine,
//! `hm_simnet::churn`) together with the run-side consequences the ISSUE's
//! re-homing policy demands: minting deterministic data shards for clients
//! that join mid-run, keeping the [`ClientRoster`] the execution engines
//! enumerate in sync with the membership, re-projecting the fairness
//! weights `p` onto the simplex over surviving edges after a permanent
//! edge failure, and emitting the `ChurnRound` trace event plus the
//! unsequenced `churn`/`rehome` telemetry records the conformance
//! automaton and report tooling consume.
//!
//! An inert plan ([`ChurnPlan::is_none`]) makes the controller a zero-cost
//! no-op: no RNG draws, no events, `roster()` returns `None` so the
//! engines take the frozen legacy enumeration — bit-identical to pre-churn
//! builds.

use super::hier_common::{ClientRoster, QuarantineCtl};
use crate::problem::FederatedProblem;
use hm_data::rng::{Purpose, StreamKey, StreamRng};
use hm_data::Dataset;
use hm_simnet::trace::{Event, Trace};
use hm_simnet::{ActiveTopology, ChurnPlan, ChurnStats, RoundChurn};
use hm_telemetry::{Telemetry, TelemetryEvent};

/// Mint the data shard of a client that joins mid-run: a bootstrap
/// resample (with replacement) of its home edge's training pool, the same
/// size as the edge's original per-client shards, drawn from the keyed
/// `Purpose::ChurnData` stream so the shard is a pure function of
/// `(seed, gid)` — identical across executors, engines, and resume
/// splices.
fn mint_shard(problem: &FederatedProblem, seed: u64, gid: usize, edge: usize) -> Dataset {
    let pool = problem.scenario.edges[edge].train_concat();
    let n0 = problem.clients_per_edge();
    let size = (pool.len() / n0).max(1);
    let mut rng = StreamRng::for_key(StreamKey::new(seed, Purpose::ChurnData, 0, gid as u64));
    let idx: Vec<usize> = (0..size).map(|_| rng.below(pool.len())).collect();
    pool.subset(&idx)
}

/// Membership-churn state of one hierarchical run.
pub(crate) struct ChurnCtl {
    plan: ChurnPlan,
    seed: u64,
    topo: ActiveTopology,
    roster: ClientRoster,
    stats: ChurnStats,
    /// `(gid, home_edge_at_join)` per joiner, in id order — enough to
    /// re-mint every joiner shard bit-identically on resume.
    joined_src: Vec<(usize, usize)>,
}

impl ChurnCtl {
    /// Build the controller for a run. Panics on an invalid plan (the CLI
    /// validates up front for a typed error).
    pub(crate) fn new(problem: &FederatedProblem, plan: &ChurnPlan, seed: u64) -> Self {
        plan.validate()
            .unwrap_or_else(|e| panic!("invalid churn plan: {e}"));
        let topo = ActiveTopology::new(&problem.topology());
        let members = (0..topo.num_edges())
            .map(|e| topo.members_of(e).to_vec())
            .collect();
        Self {
            plan: *plan,
            seed,
            topo,
            roster: ClientRoster::new(members),
            stats: ChurnStats::default(),
            joined_src: Vec::new(),
        }
    }

    /// Whether the plan has any non-zero rate. Inactive controllers do
    /// nothing and route the engines onto the legacy layout.
    pub(crate) fn active(&self) -> bool {
        !self.plan.is_none()
    }

    /// The roster the execution engines should enumerate: `Some` only
    /// when churn is active, so churn-off runs stay on the frozen path.
    pub(crate) fn roster(&self) -> Option<&ClientRoster> {
        self.active().then_some(&self.roster)
    }

    /// Cumulative transition counters.
    pub(crate) fn stats(&self) -> ChurnStats {
        self.stats
    }

    /// Surviving (up) edges, ascending.
    pub(crate) fn up_edges(&self) -> Vec<usize> {
        self.topo.up_edges()
    }

    /// Exclusive upper bound on every global client id minted so far.
    #[cfg(test)]
    pub(crate) fn id_bound(&self) -> usize {
        self.topo.id_bound()
    }

    /// Active members of `edge` (empty for a failed, drained edge).
    pub(crate) fn members_of(&self, edge: usize) -> &[usize] {
        self.roster.members_of(edge)
    }

    /// Apply one round of churn at the round boundary (before Phase-1
    /// sampling): membership transitions, joiner shard minting, roster
    /// sync, quarantine-table growth, `p` re-projection, and event
    /// emission — all gated on an active plan.
    pub(crate) fn begin_round(
        &mut self,
        problem: &FederatedProblem,
        round: usize,
        p: &mut [f32],
        quarantine: &mut QuarantineCtl,
        trace: &Trace,
        tel: &Telemetry,
    ) -> RoundChurn {
        if !self.active() {
            return RoundChurn::default();
        }
        let rc = self.topo.apply_round(&self.plan, self.seed, round);
        self.stats.absorb(&rc);
        for &(gid, home) in &rc.joined {
            self.roster
                .insert_joined(gid, mint_shard(problem, self.seed, gid, home));
            self.joined_src.push((gid, home));
        }
        let (_, _, members, _) = self.topo.parts();
        self.roster.sync_members(members);
        quarantine.ensure_clients(self.topo.id_bound());
        trace.record(|| Event::ChurnRound {
            round,
            left: rc.left.clone(),
            failed_edges: rc.failed_edges.clone(),
            rehomed: rc.rehomed.clone(),
            joined: rc.joined.clone(),
        });
        tel.record_unsequenced(|| TelemetryEvent::Churn {
            round,
            joins: rc.joined.len() as u64,
            leaves: rc.left.len() as u64,
            edge_failures: rc.failed_edges.len() as u64,
            rehomed: rc.rehomed.len() as u64,
        });
        for &(client, from_edge, to_edge) in &rc.rehomed {
            tel.record_unsequenced(|| TelemetryEvent::Rehome {
                round,
                client,
                from_edge,
                to_edge,
            });
        }
        if !rc.failed_edges.is_empty() {
            self.reproject_weights(p);
        }
        rc
    }

    /// Re-project the fairness weights onto the simplex over surviving
    /// edges (the minimax adversary cannot weight a loss nobody can ever
    /// report again). Delegates to [`ActiveTopology::reproject_weights`]
    /// so the conformance replayer mirrors the exact arithmetic. A no-op
    /// when churn is off or `p` is empty (the minimization loops have no
    /// weights).
    pub(crate) fn reproject_weights(&self, p: &mut [f32]) {
        if self.active() {
            self.topo.reproject_weights(p);
        }
    }

    /// Training data of an active client by global id (original shard or
    /// minted joiner shard).
    pub(crate) fn data<'a>(
        &'a self,
        problem: &'a FederatedProblem,
        gid: usize,
    ) -> &'a Dataset {
        self.roster.data(problem, gid)
    }

    /// Serialise the controller state (plus the run loop's consecutive
    /// stale-round counter) for the snapshot's `CHURN_SECTION`.
    pub(crate) fn checkpoint_bytes(&self, stale_rounds: u64) -> Vec<u8> {
        let (base_total, edge_up, members, next_join_id) = self.topo.parts();
        crate::checkpoint::encode_churn(
            base_total,
            edge_up,
            members,
            next_join_id,
            &self.stats,
            &self.joined_src,
            stale_rounds,
        )
    }

    /// Restore from a snapshot's `CHURN_SECTION`, re-minting every joiner
    /// shard from its keyed stream. Returns the persisted stale-round
    /// counter.
    pub(crate) fn restore(&mut self, problem: &FederatedProblem, bytes: &[u8]) -> u64 {
        let snap = crate::checkpoint::decode_churn(bytes)
            .unwrap_or_else(|e| panic!("cannot resume: {e}"));
        self.topo = ActiveTopology::from_parts(
            snap.base_total,
            snap.edge_up,
            snap.members,
            snap.next_join_id,
        );
        for &(gid, home) in &snap.joined_src {
            self.roster
                .insert_joined(gid, mint_shard(problem, self.seed, gid, home));
        }
        self.joined_src = snap.joined_src;
        let (_, _, members, _) = self.topo.parts();
        self.roster.sync_members(members);
        self.stats = snap.stats;
        snap.stale_rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hm_data::scenarios::tiny_problem;
    use hm_simnet::NO_CHURN;

    fn problem() -> FederatedProblem {
        FederatedProblem::logistic_from_scenario(&tiny_problem(3, 2, 1))
    }

    #[test]
    fn inert_plan_is_a_noop() {
        let fp = problem();
        let mut ctl = ChurnCtl::new(&fp, &NO_CHURN, 7);
        assert!(!ctl.active());
        assert!(ctl.roster().is_none());
        let mut p = vec![0.5, 0.25, 0.25];
        let mut q = QuarantineCtl::new(0.0, 0, 6);
        let rc = ctl.begin_round(
            &fp,
            0,
            &mut p,
            &mut q,
            &Trace::enabled(),
            &Telemetry::disabled(),
        );
        assert!(rc.is_empty());
        assert_eq!(p, vec![0.5, 0.25, 0.25]);
        assert_eq!(ctl.stats(), ChurnStats::default());
    }

    #[test]
    fn minted_shards_are_deterministic_and_sized() {
        let fp = problem();
        let a = mint_shard(&fp, 11, 6, 1);
        let b = mint_shard(&fp, 11, 6, 1);
        assert_eq!(a.x.as_slice(), b.x.as_slice());
        assert_eq!(a.y, b.y);
        // Standard shard size: the edge pool split over n0 clients.
        let pool = fp.scenario.edges[1].train_concat();
        assert_eq!(a.len(), pool.len() / fp.clients_per_edge());
        // A different gid draws a different resample.
        let c = mint_shard(&fp, 11, 7, 1);
        assert!(a.y != c.y || a.x.as_slice() != c.x.as_slice());
    }

    #[test]
    fn reprojection_moves_mass_off_dead_edges() {
        let fp = problem();
        let plan = ChurnPlan {
            edge_fail_rate: 1.0,
            ..NO_CHURN
        };
        let mut ctl = ChurnCtl::new(&fp, &plan, 3);
        let mut p = vec![0.2, 0.3, 0.5];
        let mut q = QuarantineCtl::new(0.0, 0, 6);
        ctl.begin_round(
            &fp,
            0,
            &mut p,
            &mut q,
            &Trace::disabled(),
            &Telemetry::disabled(),
        );
        // Rate 1.0 kills all but the guarded last up edge.
        let up = ctl.up_edges();
        assert_eq!(up.len(), 1);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "p sums to {sum}");
        for (e, &x) in p.iter().enumerate() {
            if !up.contains(&e) {
                assert_eq!(x, 0.0, "dead edge {e} kept weight");
            }
        }
    }

    #[test]
    fn reprojection_falls_back_to_uniform_when_all_mass_died() {
        let fp = problem();
        let plan = ChurnPlan {
            edge_fail_rate: 1.0,
            ..NO_CHURN
        };
        let mut ctl = ChurnCtl::new(&fp, &plan, 3);
        let mut q = QuarantineCtl::new(0.0, 0, 6);
        ctl.begin_round(
            &fp,
            0,
            &mut [],
            &mut q,
            &Trace::disabled(),
            &Telemetry::disabled(),
        );
        let up = ctl.up_edges();
        assert_eq!(up.len(), 1);
        // All the mass sat on edges that died.
        let mut p = vec![0.0_f32; 3];
        for e in 0..3 {
            if !up.contains(&e) {
                p[e] = 0.5;
            }
        }
        ctl.reproject_weights(&mut p);
        assert_eq!(p[up[0]], 1.0);
        assert_eq!(p.iter().sum::<f32>(), 1.0);
    }

    #[test]
    fn checkpoint_round_trips_through_bytes() {
        let fp = problem();
        let plan = ChurnPlan::preset("chaos-churn").unwrap();
        let mut ctl = ChurnCtl::new(&fp, &plan, 13);
        let mut p = fp.initial_p();
        let mut q = QuarantineCtl::new(0.0, 0, 6);
        for k in 0..6 {
            ctl.begin_round(
                &fp,
                k,
                &mut p,
                &mut q,
                &Trace::disabled(),
                &Telemetry::disabled(),
            );
        }
        let bytes = ctl.checkpoint_bytes(2);
        let mut fresh = ChurnCtl::new(&fp, &plan, 13);
        let stale = fresh.restore(&fp, &bytes);
        assert_eq!(stale, 2);
        assert_eq!(fresh.stats(), ctl.stats());
        assert_eq!(fresh.up_edges(), ctl.up_edges());
        assert_eq!(fresh.id_bound(), ctl.id_bound());
        // The restored controller continues identically.
        let mut p2 = p.clone();
        let a = ctl.begin_round(
            &fp,
            6,
            &mut p,
            &mut q,
            &Trace::disabled(),
            &Telemetry::disabled(),
        );
        let mut q2 = QuarantineCtl::new(0.0, 0, 6);
        let b = fresh.begin_round(
            &fp,
            6,
            &mut p2,
            &mut q2,
            &Trace::disabled(),
            &Telemetry::disabled(),
        );
        assert_eq!(a, b);
        assert_eq!(p, p2);
    }
}
