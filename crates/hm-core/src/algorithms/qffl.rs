//! q-FedAvg (Li, Sanjabi, Beirami & Smith, *Fair Resource Allocation in
//! Federated Learning*, ICLR 2020 — the paper's reference [19]).
//!
//! An *alternative* fairness mechanism to minimax reweighting: instead of
//! optimising the worst mixture, q-FFL minimises
//! `Σ_k F_k^{q+1} / (q+1)` — a soft emphasis on high-loss clients that
//! interpolates between plain FedAvg (`q = 0`) and minimax fairness
//! (`q → ∞`). Included as an extension baseline so the fairness frontier
//! of the two approaches can be compared (`examples/fairness_frontier.rs`).
//!
//! Update rule (q-FedAvg): each sampled client `k` runs local SGD from the
//! broadcast `w` to `w̄_k`, reports its loss `F_k` at `w`, and the server
//! applies
//!
//! ```text
//! Δw_k = L (w − w̄_k),          Δ_k = F_k^q Δw_k,
//! h_k  = q F_k^{q−1} ‖Δw_k‖² + L F_k^q,
//! w ← w − (Σ_k Δ_k) / (Σ_k h_k),
//! ```
//!
//! with `L = 1/η_w` — the Lipschitz surrogate the authors recommend.

use super::flat_common::{client_dataset, q_to_edge_p, run_flat_clients};
use super::{finish_round, Algorithm, IterateAverage, RunOpts, RunResult};
use crate::checkpoint::{CheckpointCtx, ResumedRun};
use crate::history::History;
use crate::localsgd::estimate_loss;
use crate::problem::FederatedProblem;
use hm_data::rng::{Purpose, StreamKey, StreamRng};
use hm_simnet::sampling::sample_edges_uniform;
use hm_simnet::trace::Event;
use hm_simnet::{CommMeter, Link};
use hm_telemetry::Phase;
use hm_tensor::vecops;

/// Configuration of a q-FedAvg run.
#[derive(Debug, Clone)]
pub struct QfflConfig {
    /// Training rounds.
    pub rounds: usize,
    /// Local SGD steps per round.
    pub tau1: usize,
    /// Participating clients per round (uniform sampling).
    pub m_clients: usize,
    /// The fairness exponent `q ≥ 0` (`0` recovers FedAvg-style updates).
    pub q: f64,
    /// Local model learning rate (also sets `L = 1/η_w`).
    pub eta_w: f32,
    /// Mini-batch size for local SGD.
    pub batch_size: usize,
    /// Mini-batch size for the loss report `F_k`.
    pub loss_batch: usize,
    /// Shared runner options.
    pub opts: RunOpts,
}

impl Default for QfflConfig {
    fn default() -> Self {
        Self {
            rounds: 100,
            tau1: 2,
            m_clients: 4,
            q: 1.0,
            eta_w: 0.05,
            batch_size: 4,
            loss_batch: 16,
            opts: RunOpts::default(),
        }
    }
}

/// The q-FedAvg extension baseline.
#[derive(Debug, Clone)]
pub struct QFedAvg {
    cfg: QfflConfig,
}

impl QFedAvg {
    /// Build a runner from a config.
    ///
    /// # Panics
    /// Panics on degenerate configs or negative `q`.
    pub fn new(cfg: QfflConfig) -> Self {
        assert!(cfg.rounds > 0 && cfg.tau1 > 0 && cfg.m_clients > 0);
        assert!(cfg.q >= 0.0, "q must be non-negative");
        assert!(cfg.eta_w > 0.0, "eta_w must be positive");
        Self { cfg }
    }
}

impl Algorithm for QFedAvg {
    fn name(&self) -> &'static str {
        "q-FedAvg"
    }

    fn run(&self, problem: &FederatedProblem, seed: u64) -> RunResult {
        let cfg = &self.cfg;
        let n = problem.topology().total_clients();
        assert!(
            cfg.m_clients <= n,
            "m_clients {} exceeds {} clients",
            cfg.m_clients,
            n
        );
        let d = problem.num_params();
        let big_l = f64::from(1.0 / cfg.eta_w);
        let meter = CommMeter::new();
        let trace = cfg.opts.make_trace();
        let mut history = History::default();
        let mut avg_w = IterateAverage::new(d);
        let mut avg_p = IterateAverage::new(problem.num_edges());
        let uniform_p = problem.initial_p();

        let mut w = problem
            .model
            .init_params(&mut StreamRng::for_key(StreamKey::new(
                seed,
                Purpose::Init,
                0,
                0,
            )));

        let resumed = ResumedRun::from_opts(&cfg.opts, "q-FedAvg", seed, cfg.rounds);
        let start_round = match &resumed {
            Some(rr) => {
                w.clone_from(&rr.w);
                avg_w = rr.avg_w.clone();
                avg_p = rr.avg_p.clone();
                history = rr.history.clone();
                meter.restore(&rr.comm);
                rr.start_round
            }
            None => 0,
        };
        // q-FedAvg emits no telemetry, so checkpoint events are suppressed.
        let ckpt = CheckpointCtx::new(&cfg.opts, "q-FedAvg", seed, cfg.rounds, false);
        let prof = &cfg.opts.profile;
        let tel = &cfg.opts.telemetry;

        for k in start_round..cfg.rounds {
            let round_span = prof.start();
            let sampling_span = prof.start();
            let mut s_rng =
                StreamRng::for_key(StreamKey::new(seed, Purpose::EdgeSampling, k as u64, 0));
            let sampled = sample_edges_uniform(n, cfg.m_clients, &mut s_rng);
            trace.record(|| Event::Phase1EdgesSampled {
                round: k,
                edges: sampled.clone(),
            });
            prof.record(tel, Phase::Phase1Sampling, Some(k), None, sampling_span);

            meter.record_broadcast(Link::ClientCloud, d as u64, sampled.len() as u64);
            let sgd_span = prof.start();
            let results = run_flat_clients(
                problem,
                &w,
                &sampled,
                cfg.tau1,
                cfg.eta_w,
                cfg.batch_size,
                k,
                seed,
                cfg.opts.parallelism,
                None,
            );
            // Each client also reports its loss F_k at the broadcast model.
            let losses: Vec<f64> = cfg.opts.parallelism.map_ref(&sampled, |&c| {
                let mut rng = StreamRng::for_key(StreamKey::new(
                    seed,
                    Purpose::LossEstSampling,
                    k as u64,
                    c as u64,
                ));
                estimate_loss(
                    &*problem.model,
                    client_dataset(problem, c),
                    &w,
                    cfg.loss_batch,
                    &mut rng,
                )
                .max(1e-10) // F_k^q-1 must stay finite for q < 1
            });
            prof.record(tel, Phase::LocalSgdChain, Some(k), None, sgd_span);
            meter.record_gather(Link::ClientCloud, d as u64 + 1, sampled.len() as u64);
            meter.record_round(Link::ClientCloud);

            // q-FedAvg aggregation.
            let agg_span = prof.start();
            let mut delta_sum = vec![0.0_f64; d];
            let mut h_sum = 0.0_f64;
            for ((w_k, _), &f_k) in results.iter().zip(&losses) {
                // Δw_k = L (w − w̄_k)
                let fq = f_k.powf(cfg.q);
                let mut norm_sq = 0.0_f64;
                for (i, (&wi, &wki)) in w.iter().zip(w_k.iter()).enumerate() {
                    let dw = big_l * (f64::from(wi) - f64::from(wki));
                    norm_sq += dw * dw;
                    delta_sum[i] += fq * dw;
                }
                h_sum += cfg.q * f_k.powf(cfg.q - 1.0) * norm_sq + big_l * fq;
            }
            if h_sum > 0.0 {
                let step: Vec<f32> = delta_sum.iter().map(|&x| (x / h_sum) as f32).collect();
                vecops::axpy(-1.0, &step, &mut w);
                use hm_optim::projection::Projection;
                problem.w_domain.project(&mut w);
            }
            prof.record(tel, Phase::Aggregation, Some(k), None, agg_span);
            trace.record(|| Event::GlobalAggregation { round: k });

            finish_round(
                problem,
                &cfg.opts,
                &mut history,
                &mut avg_w,
                &mut avg_p,
                k,
                cfg.rounds,
                cfg.tau1,
                meter.snapshot(),
                &w,
                uniform_p.clone(),
            );
            ckpt.after_round(
                k,
                &w,
                &uniform_p,
                &avg_w,
                &avg_p,
                &history,
                meter.snapshot(),
                Default::default(),
                vec![],
            );
            prof.record(tel, Phase::Round, Some(k), None, round_span);
        }
        prof.emit_summary(tel);

        let final_p = q_to_edge_p(problem, &vec![1.0 / n as f32; n]);
        RunResult {
            final_w: w,
            avg_w: avg_w.mean(),
            final_p,
            avg_p: avg_p.mean(),
            history,
            comm: meter.snapshot(),
            trace,
            faults: Default::default(),
            quarantine: Default::default(),
            churn: Default::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hm_data::scenarios::tiny_problem;
    use hm_simnet::Parallelism;

    fn quick_cfg(rounds: usize, q: f64) -> QfflConfig {
        QfflConfig {
            rounds,
            tau1: 2,
            m_clients: 4,
            q,
            eta_w: 0.1,
            batch_size: 2,
            loss_batch: 8,
            opts: RunOpts {
                eval_every: 0,
                parallelism: Parallelism::Sequential,
                trace: false,
                ..Default::default()
            },
        }
    }

    #[test]
    fn runs_and_learns() {
        let sc = tiny_problem(3, 2, 81);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let w0 = vec![0.0; fp.num_params()];
        let p0 = fp.initial_p();
        let before = fp.objective(&w0, &p0);
        let mut cfg = quick_cfg(150, 1.0);
        cfg.m_clients = 6;
        let r = QFedAvg::new(cfg).run(&fp, 3);
        assert!(fp.objective(&r.final_w, &p0) < before * 0.8);
    }

    #[test]
    fn one_cloud_round_per_training_round() {
        let sc = tiny_problem(3, 2, 82);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let r = QFedAvg::new(quick_cfg(5, 1.0)).run(&fp, 1);
        assert_eq!(r.comm.cloud_rounds(), 5);
        assert_eq!(r.history.rounds.last().unwrap().slots_done, 10);
    }

    #[test]
    fn deterministic_across_parallelism() {
        let sc = tiny_problem(3, 2, 83);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let mut cfg = quick_cfg(4, 2.0);
        let a = QFedAvg::new(cfg.clone()).run(&fp, 7);
        cfg.opts.parallelism = Parallelism::Rayon;
        let b = QFedAvg::new(cfg).run(&fp, 7);
        assert_eq!(a.final_w, b.final_w);
    }

    #[test]
    fn higher_q_equalizes_training_losses() {
        // q-FFL's defining property: larger q drives the per-edge *training
        // losses* toward uniformity (the objective upweights high-loss
        // clients). Measured on the loss spread, with low-noise loss
        // reports, averaged over seeds.
        use hm_data::generators::synthetic_images::ImageConfig;
        use hm_data::scenarios::one_class_per_edge;
        let cfg_img = ImageConfig {
            side: 8,
            num_classes: 4,
            bumps_per_class: 3,
            separation: 1.0,
            noise: 0.4,
            prototype_overlap: 0.0,
            pair_similarity: 0.0,
            noise_spread: 0.0,
            separation_spread: 0.5,
        };
        let sc = one_class_per_edge(cfg_img, 4, 2, 40, 100, 84);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let spread_at = |q: f64| -> f64 {
            let mut total = 0.0;
            for seed in 0..3u64 {
                let mut c = quick_cfg(600, q);
                c.m_clients = 8; // full participation: isolate the q effect
                c.eta_w = 0.05;
                c.loss_batch = 64;
                let r = QFedAvg::new(c).run(&fp, 5 + seed);
                let losses = fp.edge_losses(&r.final_w);
                let max = losses.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let min = losses.iter().copied().fold(f64::INFINITY, f64::min);
                total += max - min;
            }
            total / 3.0
        };
        let s0 = spread_at(0.0);
        let s3 = spread_at(3.0);
        assert!(
            s3 < s0,
            "q = 3 should equalize losses vs q = 0: spread {s3:.3} vs {s0:.3}"
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_q_rejected() {
        let _ = QFedAvg::new(quick_cfg(1, -1.0));
    }
}
