//! Stochastic-AFL (Mohri, Sivek & Suresh, ICML 2019) — the two-layer
//! *minimax* baseline with **single-step** local updates.
//!
//! Per training round (= one time slot): the cloud samples clients by the
//! current mixture weights `q` for the model step, and a uniform client set
//! for the loss estimates that drive the `q` gradient-ascent step. Both
//! exchanges ride the round's single broadcast/gather (the original
//! algorithm has every sampled client return its gradient *and* loss for
//! the same broadcast model), so one `ClientCloud` round is recorded per
//! training round.
//!
//! The weight vector `q` lives on the client-level simplex `Δ_{N−1}`; with
//! identically-distributed clients inside each edge area this expresses the
//! same mixtures as the paper's edge-level `p` (history records `q` summed
//! per edge).

use super::flat_common::{q_to_edge_p, run_flat_clients};
use super::hier_common::multiplicities;
use super::{finish_round, Algorithm, IterateAverage, RunOpts, RunResult};
use crate::checkpoint::{emit_preamble, CheckpointCtx, ResumedRun};
use crate::history::History;
use crate::localsgd::estimate_loss;
use crate::problem::FederatedProblem;
use hm_data::rng::{Purpose, StreamKey, StreamRng};
use hm_optim::sgd::projected_ascent_step;
use hm_optim::ProjectionOp;
use hm_simnet::sampling::{sample_edges_uniform, sample_edges_weighted};
use hm_simnet::trace::Event;
use hm_simnet::{CommMeter, Link};
use hm_telemetry::{Phase, TelemetryEvent};
use hm_tensor::vecops;

/// Configuration of a Stochastic-AFL run.
#[derive(Debug, Clone)]
pub struct AflConfig {
    /// Training rounds (each is a single SGD slot).
    pub rounds: usize,
    /// Participating clients per round.
    pub m_clients: usize,
    /// Model learning rate.
    pub eta_w: f32,
    /// Mixture-weight learning rate.
    pub eta_q: f32,
    /// Mini-batch size for local SGD.
    pub batch_size: usize,
    /// Mini-batch size for loss estimation (a larger batch lowers the
    /// variance σ_p² of the weight-gradient estimate).
    pub loss_batch: usize,
    /// Shared runner options.
    pub opts: RunOpts,
}

impl Default for AflConfig {
    fn default() -> Self {
        Self {
            rounds: 200,
            m_clients: 4,
            eta_w: 0.05,
            eta_q: 0.05,
            batch_size: 4,
            loss_batch: 16,
            opts: RunOpts::default(),
        }
    }
}

/// The Stochastic-AFL baseline.
#[derive(Debug, Clone)]
pub struct StochasticAfl {
    cfg: AflConfig,
}

impl StochasticAfl {
    /// Build a runner from a config.
    pub fn new(cfg: AflConfig) -> Self {
        assert!(cfg.rounds > 0 && cfg.m_clients > 0 && cfg.batch_size > 0);
        Self { cfg }
    }
}

impl Algorithm for StochasticAfl {
    fn name(&self) -> &'static str {
        "Stochastic-AFL"
    }

    fn run(&self, problem: &FederatedProblem, seed: u64) -> RunResult {
        let cfg = &self.cfg;
        let n = problem.topology().total_clients();
        assert!(
            cfg.m_clients <= n,
            "m_clients {} exceeds {} clients",
            cfg.m_clients,
            n
        );
        let d = problem.num_params();
        let meter = CommMeter::new();
        let trace = cfg.opts.make_trace();
        let mut history = History::default();
        let mut avg_w = IterateAverage::new(d);
        let mut avg_p = IterateAverage::new(problem.num_edges());

        let mut w = problem
            .model
            .init_params(&mut StreamRng::for_key(StreamKey::new(
                seed,
                Purpose::Init,
                0,
                0,
            )));
        let mut q = vec![1.0 / n as f32; n];
        let q_domain = ProjectionOp::Simplex;

        let resumed = ResumedRun::from_opts(&cfg.opts, "Stochastic-AFL", seed, cfg.rounds);
        let start_round = match &resumed {
            Some(rr) => {
                w.clone_from(&rr.w);
                q.clone_from(&rr.p);
                avg_w = rr.avg_w.clone();
                avg_p = rr.avg_p.clone();
                history = rr.history.clone();
                meter.restore(&rr.comm);
                rr.start_round
            }
            None => 0,
        };
        let mut comm_prev = meter.snapshot();

        let tel = &cfg.opts.telemetry;
        let run_timer = tel.timer();
        emit_preamble(
            tel,
            resumed.as_ref(),
            "Stochastic-AFL",
            cfg.rounds,
            problem.num_edges(),
            d,
            seed,
        );
        let ckpt = CheckpointCtx::new(&cfg.opts, "Stochastic-AFL", seed, cfg.rounds, true);

        let prof = &cfg.opts.profile;
        for k in start_round..cfg.rounds {
            tel.record(|| TelemetryEvent::RoundStart { round: k });
            let round_timer = tel.timer();
            let phase1_timer = tel.timer();
            let round_span = prof.start();
            let sampling_span = prof.start();
            // Model step: clients sampled by q, single local SGD step.
            let mut e_rng =
                StreamRng::for_key(StreamKey::new(seed, Purpose::EdgeSampling, k as u64, 0));
            let q64: Vec<f64> = q.iter().map(|&x| f64::from(x).max(0.0)).collect();
            let sampled = sample_edges_weighted(&q64, cfg.m_clients, &mut e_rng);
            trace.record(|| Event::Phase1EdgesSampled {
                round: k,
                edges: sampled.clone(),
            });
            let (distinct, counts) = multiplicities(&sampled);
            // Two-layer method: "edges" are sampled client ids.
            tel.record(|| TelemetryEvent::Phase1Sampled {
                round: k,
                edges: sampled.clone(),
                checkpoint: None,
            });

            // Loss-estimation set: uniform clients (unbiased q-gradient).
            let mut u_rng = StreamRng::for_key(StreamKey::new(
                seed,
                Purpose::LossEstSampling,
                k as u64,
                u64::MAX,
            ));
            let u_set = sample_edges_uniform(n, cfg.m_clients, &mut u_rng);
            trace.record(|| Event::Phase2EdgesSampled {
                round: k,
                edges: u_set.clone(),
            });
            prof.record(tel, Phase::Phase1Sampling, Some(k), None, sampling_span);

            // One broadcast serves both sets; meter the union.
            let mut union = distinct.clone();
            for &c in &u_set {
                if !union.contains(&c) {
                    union.push(c);
                }
            }
            meter.record_broadcast(Link::ClientCloud, d as u64, union.len() as u64);

            let sgd_span = prof.start();
            let results = run_flat_clients(
                problem,
                &w,
                &distinct,
                1,
                cfg.eta_w,
                cfg.batch_size,
                k,
                seed,
                cfg.opts.parallelism,
                None,
            );
            prof.record(tel, Phase::LocalSgdChain, Some(k), None, sgd_span);
            meter.record_gather(Link::ClientCloud, d as u64, distinct.len() as u64);

            let losses: Vec<f64> = cfg.opts.parallelism.map_ref(&u_set, |&c| {
                let mut rng = StreamRng::for_key(StreamKey::new(
                    seed,
                    Purpose::LossEstSampling,
                    k as u64,
                    c as u64,
                ));
                estimate_loss(
                    &*problem.model,
                    super::flat_common::client_dataset(problem, c),
                    &w,
                    cfg.loss_batch,
                    &mut rng,
                )
            });
            meter.record_gather(Link::ClientCloud, 1, u_set.len() as u64);
            meter.record_round(Link::ClientCloud);

            // Aggregate the model over the m sampled slots.
            let agg_span = prof.start();
            let weights: Vec<f64> = counts
                .iter()
                .map(|&c| c as f64 / cfg.m_clients as f64)
                .collect();
            let models: Vec<&[f32]> = results.iter().map(|(m, _)| m.as_slice()).collect();
            vecops::weighted_average_into(&models, &weights, &mut w);
            prof.record(tel, Phase::Aggregation, Some(k), None, agg_span);
            trace.record(|| Event::GlobalAggregation { round: k });
            tel.record(|| TelemetryEvent::Phase1Done {
                round: k,
                elapsed_s: phase1_timer.elapsed_s(),
            });

            // Mixture-weight ascent on the unbiased estimate.
            let phase2_timer = tel.timer();
            let dual_span = prof.start();
            let mut v = vec![0.0_f32; n];
            let scale = n as f64 / cfg.m_clients as f64;
            for (&c, &l) in u_set.iter().zip(&losses) {
                v[c] = (scale * l) as f32;
            }
            projected_ascent_step(&mut q, &v, cfg.eta_q, &q_domain);
            prof.record(tel, Phase::DualUpdate, Some(k), None, dual_span);
            let p_edge = q_to_edge_p(problem, &q);
            trace.record(|| Event::WeightUpdate {
                round: k,
                p: p_edge.clone(),
            });
            tel.record(|| TelemetryEvent::DualUpdate {
                round: k,
                edges: u_set.clone(),
                losses: losses.clone(),
                p: p_edge.clone(),
                elapsed_s: phase2_timer.elapsed_s(),
            });
            let comm_now = meter.snapshot();
            let slots_done = k + 1;
            tel.record(|| TelemetryEvent::RoundEnd {
                round: k,
                slots: slots_done,
                comm_delta: comm_now.since(&comm_prev),
                comm_total: comm_now,
                sim_s: tel.sim_seconds(&comm_now, slots_done, 1),
                elapsed_s: round_timer.elapsed_s(),
            });
            comm_prev = comm_now;
            prof.record(tel, Phase::Round, Some(k), None, round_span);

            finish_round(
                problem,
                &cfg.opts,
                &mut history,
                &mut avg_w,
                &mut avg_p,
                k,
                cfg.rounds,
                1,
                comm_now,
                &w,
                p_edge,
            );
            ckpt.after_round(
                k,
                &w,
                &q,
                &avg_w,
                &avg_p,
                &history,
                comm_now,
                Default::default(),
                vec![],
            );
        }

        let comm_final = meter.snapshot();
        prof.emit_summary(tel);
        tel.record(|| TelemetryEvent::RunEnd {
            rounds: cfg.rounds,
            slots: cfg.rounds,
            comm_total: comm_final,
            sim_s: tel.sim_seconds(&comm_final, cfg.rounds, 1),
            elapsed_s: run_timer.elapsed_s(),
        });
        tel.flush();

        let final_p = q_to_edge_p(problem, &q);
        RunResult {
            final_w: w,
            avg_w: avg_w.mean(),
            final_p,
            avg_p: avg_p.mean(),
            history,
            comm: comm_final,
            trace,
            faults: Default::default(),
            quarantine: Default::default(),
            churn: Default::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hm_data::scenarios::tiny_problem;
    use hm_simnet::Parallelism;

    fn quick_cfg(rounds: usize) -> AflConfig {
        AflConfig {
            rounds,
            m_clients: 4,
            eta_w: 0.1,
            eta_q: 0.1,
            batch_size: 2,
            loss_batch: 4,
            opts: RunOpts {
                eval_every: 1,
                parallelism: Parallelism::Sequential,
                trace: false,
                ..Default::default()
            },
        }
    }

    #[test]
    fn one_cloud_round_and_one_slot_per_round() {
        let sc = tiny_problem(3, 2, 1);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let r = StochasticAfl::new(quick_cfg(7)).run(&fp, 42);
        assert_eq!(r.comm.cloud_rounds(), 7);
        assert_eq!(r.history.rounds.last().unwrap().slots_done, 7);
    }

    #[test]
    fn p_moves_and_stays_stochastic() {
        let sc = tiny_problem(3, 2, 2);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let r = StochasticAfl::new(quick_cfg(20)).run(&fp, 3);
        let sum: f32 = r.final_p.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-4,
            "p doesn't sum to 1: {:?}",
            r.final_p
        );
        let uniform = 1.0 / 3.0;
        assert!(r.final_p.iter().any(|&x| (x - uniform).abs() > 1e-3));
    }

    #[test]
    fn training_reduces_objective() {
        let sc = tiny_problem(3, 2, 3);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let w0 = vec![0.0; fp.num_params()];
        let p0 = fp.initial_p();
        let before = fp.objective(&w0, &p0);
        let mut cfg = quick_cfg(80);
        cfg.m_clients = 6;
        let r = StochasticAfl::new(cfg).run(&fp, 5);
        assert!(fp.objective(&r.final_w, &p0) < before * 0.9);
    }

    #[test]
    fn deterministic_across_parallelism() {
        let sc = tiny_problem(3, 2, 4);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let mut cfg = quick_cfg(4);
        let a = StochasticAfl::new(cfg.clone()).run(&fp, 7);
        cfg.opts.parallelism = Parallelism::Rayon;
        let b = StochasticAfl::new(cfg).run(&fp, 7);
        assert_eq!(a.final_w, b.final_w);
        assert_eq!(a.final_p, b.final_p);
    }
}
