//! The distributed minimax problem instance.
//!
//! A [`FederatedProblem`] bundles everything eq. (3) needs: the hierarchical
//! data scenario (which defines the edge loss functions `f_e` empirically),
//! the model family (which defines the parameter space and the loss
//! oracle), and the constraint sets `W` and `P`.

use hm_data::scenarios::HierScenario;
use hm_data::Dataset;
use hm_nn::{Mlp, Model, MulticlassLogistic};
use hm_optim::ProjectionOp;
use hm_simnet::Topology;
use std::sync::Arc;

/// A concrete instance of the paper's problem (3):
/// `min_{w ∈ W} max_{p ∈ P} Σ_e p_e f_e(w)`.
#[derive(Clone)]
pub struct FederatedProblem {
    /// Per-edge client training shards and test sets.
    pub scenario: HierScenario,
    /// The shared model family (loss/gradient oracle).
    pub model: Arc<dyn Model>,
    /// Constraint set `W` for the model parameters.
    pub w_domain: ProjectionOp,
    /// Constraint set `P ⊆ Δ_{N_E−1}` for the edge weights.
    pub p_domain: ProjectionOp,
}

impl std::fmt::Debug for FederatedProblem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FederatedProblem")
            .field("scenario", &self.scenario.name)
            .field("num_edges", &self.scenario.num_edges())
            .field("clients_per_edge", &self.scenario.clients_per_edge())
            .field("num_params", &self.model.num_params())
            .field("w_domain", &self.w_domain)
            .field("p_domain", &self.p_domain)
            .finish()
    }
}

impl FederatedProblem {
    /// Build a problem with an explicit model and domains.
    pub fn new(
        scenario: HierScenario,
        model: Arc<dyn Model>,
        w_domain: ProjectionOp,
        p_domain: ProjectionOp,
    ) -> Self {
        scenario.validate();
        Self {
            scenario,
            model,
            w_domain,
            p_domain,
        }
    }

    /// The paper's convex setting: multinomial logistic regression,
    /// `W = R^d`, `P = Δ` (§6.1).
    pub fn logistic_from_scenario(scenario: &HierScenario) -> Self {
        let model = MulticlassLogistic::new(scenario.dim, scenario.num_classes);
        Self::new(
            scenario.clone(),
            Arc::new(model),
            ProjectionOp::Unconstrained,
            ProjectionOp::Simplex,
        )
    }

    /// The paper's non-convex setting: a fully-connected ReLU network with
    /// the given hidden widths, `W = R^d`, `P = Δ` (§6.2; the paper uses
    /// hidden widths 300/100).
    pub fn mlp_from_scenario(scenario: &HierScenario, hidden: &[usize]) -> Self {
        let model = Mlp::new(scenario.dim, hidden, scenario.num_classes);
        Self::new(
            scenario.clone(),
            Arc::new(model),
            ProjectionOp::Unconstrained,
            ProjectionOp::Simplex,
        )
    }

    /// Number of edge areas `N_E`.
    pub fn num_edges(&self) -> usize {
        self.scenario.num_edges()
    }

    /// Clients per edge `N_0`.
    pub fn clients_per_edge(&self) -> usize {
        self.scenario.clients_per_edge()
    }

    /// Model dimension `d`.
    pub fn num_params(&self) -> usize {
        self.model.num_params()
    }

    /// The network topology of this problem.
    pub fn topology(&self) -> Topology {
        Topology::new(self.num_edges(), self.clients_per_edge())
    }

    /// Training shard of a client, addressed as (edge, index-within-edge).
    pub fn client_data(&self, edge: usize, idx: usize) -> &Dataset {
        &self.scenario.edges[edge].client_train[idx]
    }

    /// The uniform initial edge weights `p^(0) = (1/N_E, …)`.
    pub fn initial_p(&self) -> Vec<f32> {
        vec![1.0 / self.num_edges() as f32; self.num_edges()]
    }

    /// Empirical edge loss `f_e(w)`: mean training loss over all of edge
    /// `e`'s client data (full-batch; used by evaluation, not by training).
    pub fn edge_train_loss(&self, edge: usize, w: &[f32]) -> f64 {
        let data = self.scenario.edges[edge].train_concat();
        self.model.loss(w, &data)
    }

    /// The global objective `F(w, p) = Σ_e p_e f_e(w)` on training data.
    pub fn objective(&self, w: &[f32], p: &[f32]) -> f64 {
        assert_eq!(p.len(), self.num_edges(), "weight vector length mismatch");
        (0..self.num_edges())
            .map(|e| f64::from(p[e]) * self.edge_train_loss(e, w))
            .sum()
    }

    /// All edge losses `[f_1(w), …, f_{N_E}(w)]` on training data.
    pub fn edge_losses(&self, w: &[f32]) -> Vec<f64> {
        (0..self.num_edges())
            .map(|e| self.edge_train_loss(e, w))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hm_data::scenarios::tiny_problem;

    #[test]
    fn logistic_problem_shapes() {
        let sc = tiny_problem(3, 2, 1);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        assert_eq!(fp.num_edges(), 3);
        assert_eq!(fp.clients_per_edge(), 2);
        assert_eq!(fp.num_params(), 3 * (64 + 1));
        assert_eq!(fp.initial_p(), vec![1.0 / 3.0; 3]);
    }

    #[test]
    fn objective_is_weighted_sum_of_edge_losses() {
        let sc = tiny_problem(3, 2, 2);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let w = vec![0.0; fp.num_params()];
        let losses = fp.edge_losses(&w);
        let p = [0.2_f32, 0.5, 0.3];
        let f = fp.objective(&w, &p);
        let expect: f64 = losses
            .iter()
            .zip(&p)
            .map(|(&l, &pe)| l * f64::from(pe))
            .sum();
        assert!((f - expect).abs() < 1e-12);
        // Zero parameters give ln(num_classes) per edge for logistic.
        for &l in &losses {
            assert!((l - (3.0_f64).ln()).abs() < 1e-6);
        }
    }

    #[test]
    fn mlp_problem_builds() {
        let sc = tiny_problem(2, 2, 3);
        let fp = FederatedProblem::mlp_from_scenario(&sc, &[8]);
        assert_eq!(fp.num_params(), 8 * 64 + 8 + 2 * 8 + 2);
    }

    #[test]
    fn debug_is_compact() {
        let sc = tiny_problem(2, 2, 3);
        let fp = FederatedProblem::logistic_from_scenario(&sc);
        let s = format!("{fp:?}");
        assert!(s.contains("num_edges"));
    }
}
