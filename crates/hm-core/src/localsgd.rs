//! Client-side local SGD (eq. 4) with optional checkpoint snapshot.
//!
//! All scratch memory (gradient buffer, mini-batch gather, model workspace)
//! comes from the thread-local [`hm_nn::pool`], so across the thousands of
//! client-blocks a worker thread runs per experiment, the steady-state step
//! loop performs no heap allocation at all — not even at call boundaries.
//! The pooled and fresh-scratch paths are bit-identical (every buffer is
//! overwrite-on-use); [`local_sgd_fresh`] keeps the allocate-per-call
//! behaviour available as the measurement baseline for the `roundtime`
//! bench's barrier engine.

use hm_data::batch::sample_batch_into;
use hm_data::{Dataset, StreamRng};
use hm_nn::{with_scratch, Model, TrainScratch};
use hm_optim::sgd::projected_sgd_step;
use hm_optim::ProjectionOp;

/// The step loop shared by every entry point: `w` arrives holding the start
/// iterate and leaves holding the final one; scratch buffers are resized in
/// place. Returns the checkpoint copy, if one was requested.
#[allow(clippy::too_many_arguments)]
fn local_sgd_core(
    model: &dyn Model,
    data: &Dataset,
    w: &mut [f32],
    steps: usize,
    lr: f32,
    batch_size: usize,
    proj: &ProjectionOp,
    rng: &mut StreamRng,
    checkpoint_after: Option<usize>,
    scratch: &mut TrainScratch,
) -> Option<Vec<f32>> {
    if let Some(c) = checkpoint_after {
        assert!(c <= steps, "checkpoint step {c} beyond {steps} steps");
    }
    scratch.grad.resize(model.num_params(), 0.0);
    let mut checkpoint = match checkpoint_after {
        Some(0) => Some(w.to_vec()),
        _ => None,
    };
    for step in 0..steps {
        sample_batch_into(data, batch_size, rng, &mut scratch.batch);
        model.loss_grad_ws(w, &scratch.batch.batch, &mut scratch.grad, &mut scratch.ws);
        projected_sgd_step(w, &scratch.grad, lr, proj);
        if checkpoint_after == Some(step + 1) {
            checkpoint = Some(w.to_vec());
        }
    }
    checkpoint
}

/// Run `steps` projected-SGD steps from `w0` on a client's local data,
/// drawing one mini-batch per step from `rng`. Scratch comes from the
/// thread-local pool.
///
/// When `checkpoint_after = Some(c)`, also returns a copy of the iterate
/// after exactly `c` steps (`c = 0` returns `w0` projected state, i.e. the
/// starting model) — the client-side half of the paper's checkpoint
/// mechanism (Phase 1, part (b)).
///
/// # Panics
/// Panics if `checkpoint_after > steps`.
#[allow(clippy::too_many_arguments)]
pub fn local_sgd(
    model: &dyn Model,
    data: &Dataset,
    w0: &[f32],
    steps: usize,
    lr: f32,
    batch_size: usize,
    proj: &ProjectionOp,
    rng: &mut StreamRng,
    checkpoint_after: Option<usize>,
) -> (Vec<f32>, Option<Vec<f32>>) {
    with_scratch(|scratch| {
        let mut w = w0.to_vec();
        let cp = local_sgd_core(
            model,
            data,
            &mut w,
            steps,
            lr,
            batch_size,
            proj,
            rng,
            checkpoint_after,
            scratch,
        );
        (w, cp)
    })
}

/// [`local_sgd`] writing the final iterate into a caller-owned buffer with
/// caller-owned scratch — the chained engine's slot-reuse entry point: one
/// `w` buffer and one [`TrainScratch`] per (chain, client slot) serve every
/// block of the round with zero allocation.
#[allow(clippy::too_many_arguments)]
pub fn local_sgd_into(
    model: &dyn Model,
    data: &Dataset,
    w0: &[f32],
    w: &mut Vec<f32>,
    steps: usize,
    lr: f32,
    batch_size: usize,
    proj: &ProjectionOp,
    rng: &mut StreamRng,
    checkpoint_after: Option<usize>,
    scratch: &mut TrainScratch,
) -> Option<Vec<f32>> {
    w.clear();
    w.extend_from_slice(w0);
    local_sgd_core(
        model,
        data,
        w,
        steps,
        lr,
        batch_size,
        proj,
        rng,
        checkpoint_after,
        scratch,
    )
}

/// [`local_sgd`] with freshly allocated scratch on every call — the pre-pool
/// allocation profile, kept so the barrier reference engine measures what
/// the system actually cost before chaining and pooling landed. Results are
/// bit-identical to [`local_sgd`].
#[allow(clippy::too_many_arguments)]
pub fn local_sgd_fresh(
    model: &dyn Model,
    data: &Dataset,
    w0: &[f32],
    steps: usize,
    lr: f32,
    batch_size: usize,
    proj: &ProjectionOp,
    rng: &mut StreamRng,
    checkpoint_after: Option<usize>,
) -> (Vec<f32>, Option<Vec<f32>>) {
    let mut scratch = TrainScratch::default();
    let mut w = w0.to_vec();
    let cp = local_sgd_core(
        model,
        data,
        &mut w,
        steps,
        lr,
        batch_size,
        proj,
        rng,
        checkpoint_after,
        &mut scratch,
    );
    (w, cp)
}

/// Proximal local SGD (FedProx, Li et al., MLSys 2020): each step adds the
/// proximal gradient `μ (w − w_anchor)` pulling the iterate toward the
/// round's broadcast model, which bounds client drift under heterogeneity.
/// With `mu = 0` this is exactly [`local_sgd`] without checkpointing.
#[allow(clippy::too_many_arguments)]
pub fn local_sgd_prox(
    model: &dyn Model,
    data: &Dataset,
    w0: &[f32],
    steps: usize,
    lr: f32,
    batch_size: usize,
    mu: f32,
    proj: &ProjectionOp,
    rng: &mut StreamRng,
) -> Vec<f32> {
    assert!(mu >= 0.0 && mu.is_finite(), "mu must be non-negative");
    with_scratch(|scratch| {
        let mut w = w0.to_vec();
        scratch.grad.resize(model.num_params(), 0.0);
        for _ in 0..steps {
            sample_batch_into(data, batch_size, rng, &mut scratch.batch);
            model.loss_grad_ws(&w, &scratch.batch.batch, &mut scratch.grad, &mut scratch.ws);
            if mu > 0.0 {
                for ((g, &wi), &ai) in scratch.grad.iter_mut().zip(&w).zip(w0) {
                    *g += mu * (wi - ai);
                }
            }
            projected_sgd_step(&mut w, &scratch.grad, lr, proj);
        }
        w
    })
}

/// Estimate a client's local loss `f_n(w; ξ)` on one mini-batch — the
/// client-side half of the Phase-2 `LossEstimation` procedure.
pub fn estimate_loss(
    model: &dyn Model,
    data: &Dataset,
    w: &[f32],
    batch_size: usize,
    rng: &mut StreamRng,
) -> f64 {
    with_scratch(|scratch| {
        sample_batch_into(data, batch_size, rng, &mut scratch.batch);
        model.loss(w, &scratch.batch.batch)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hm_data::rng::Purpose;
    use hm_nn::MulticlassLogistic;
    use hm_tensor::Matrix;

    fn toy() -> (MulticlassLogistic, Dataset) {
        let model = MulticlassLogistic::new(2, 2);
        let x = Matrix::from_vec(
            8,
            2,
            vec![
                1.0, 0.1, 0.9, -0.1, 1.1, 0.0, 0.8, 0.2, //
                -1.0, 0.1, -0.9, -0.2, -1.2, 0.0, -0.7, 0.1,
            ],
        );
        let y = vec![0, 0, 0, 0, 1, 1, 1, 1];
        (model, Dataset::new(x, y, 2))
    }

    #[test]
    fn loss_decreases_over_steps() {
        let (model, data) = toy();
        let w0 = vec![0.0; model.num_params()];
        let mut rng = StreamRng::new(1, Purpose::Batch, 0, 0);
        let (w, _) = local_sgd(
            &model,
            &data,
            &w0,
            100,
            0.5,
            4,
            &ProjectionOp::Unconstrained,
            &mut rng,
            None,
        );
        assert!(model.loss(&w, &data) < model.loss(&w0, &data) * 0.5);
    }

    #[test]
    fn zero_steps_is_identity() {
        let (model, data) = toy();
        let w0 = vec![0.3; model.num_params()];
        let mut rng = StreamRng::new(1, Purpose::Batch, 0, 0);
        let (w, cp) = local_sgd(
            &model,
            &data,
            &w0,
            0,
            0.5,
            4,
            &ProjectionOp::Unconstrained,
            &mut rng,
            Some(0),
        );
        assert_eq!(w, w0);
        assert_eq!(cp.unwrap(), w0);
    }

    #[test]
    fn checkpoint_is_intermediate_iterate() {
        let (model, data) = toy();
        let w0 = vec![0.0; model.num_params()];
        // Run 5 steps, checkpoint after 3 of them.
        let mut r1 = StreamRng::new(7, Purpose::Batch, 0, 0);
        let (w5, cp3) = local_sgd(
            &model,
            &data,
            &w0,
            5,
            0.2,
            2,
            &ProjectionOp::Unconstrained,
            &mut r1,
            Some(3),
        );
        // Re-run just 3 steps from the same stream: must equal the checkpoint.
        let mut r2 = StreamRng::new(7, Purpose::Batch, 0, 0);
        let (w3, _) = local_sgd(
            &model,
            &data,
            &w0,
            3,
            0.2,
            2,
            &ProjectionOp::Unconstrained,
            &mut r2,
            None,
        );
        assert_eq!(cp3.unwrap(), w3);
        assert_ne!(w5, w3);
    }

    #[test]
    #[should_panic(expected = "beyond")]
    fn checkpoint_past_end_panics() {
        let (model, data) = toy();
        let w0 = vec![0.0; model.num_params()];
        let mut rng = StreamRng::new(1, Purpose::Batch, 0, 0);
        let _ = local_sgd(
            &model,
            &data,
            &w0,
            2,
            0.1,
            1,
            &ProjectionOp::Unconstrained,
            &mut rng,
            Some(3),
        );
    }

    #[test]
    fn projection_is_applied_each_step() {
        let (model, data) = toy();
        let w0 = vec![0.0; model.num_params()];
        let proj = ProjectionOp::L2Ball { radius: 0.05 };
        let mut rng = StreamRng::new(2, Purpose::Batch, 0, 0);
        let (w, _) = local_sgd(&model, &data, &w0, 50, 1.0, 4, &proj, &mut rng, None);
        assert!(hm_tensor::vecops::norm2(&w) <= 0.05 + 1e-5);
    }

    #[test]
    fn prox_zero_mu_matches_plain_sgd() {
        let (model, data) = toy();
        let w0 = vec![0.1; model.num_params()];
        let mut r1 = StreamRng::new(4, Purpose::Batch, 0, 0);
        let mut r2 = StreamRng::new(4, Purpose::Batch, 0, 0);
        let a = local_sgd_prox(
            &model,
            &data,
            &w0,
            6,
            0.2,
            2,
            0.0,
            &ProjectionOp::Unconstrained,
            &mut r1,
        );
        let (b, _) = local_sgd(
            &model,
            &data,
            &w0,
            6,
            0.2,
            2,
            &ProjectionOp::Unconstrained,
            &mut r2,
            None,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn prox_term_limits_drift() {
        let (model, data) = toy();
        let w0 = vec![0.0; model.num_params()];
        let drift = |mu: f32| -> f64 {
            let mut rng = StreamRng::new(5, Purpose::Batch, 0, 0);
            let w = local_sgd_prox(
                &model,
                &data,
                &w0,
                60,
                0.3,
                2,
                mu,
                &ProjectionOp::Unconstrained,
                &mut rng,
            );
            hm_tensor::vecops::dist2_sq(&w, &w0).sqrt()
        };
        let free = drift(0.0);
        let tethered = drift(2.0);
        assert!(
            tethered < free * 0.7,
            "prox term did not limit drift: {tethered} vs {free}"
        );
    }

    #[test]
    fn pooled_into_and_fresh_paths_are_bit_identical() {
        // The three entry points differ only in where scratch lives; the
        // arithmetic must be the same to the bit. `local_sgd_into` is run
        // with a dirty slot buffer and dirty scratch to mimic cross-block
        // reuse inside a chain.
        let (model, data) = toy();
        let w0 = vec![0.05; model.num_params()];
        let run_pooled = || {
            let mut rng = StreamRng::new(8, Purpose::Batch, 3, 1);
            local_sgd(
                &model,
                &data,
                &w0,
                7,
                0.3,
                3,
                &ProjectionOp::Unconstrained,
                &mut rng,
                Some(4),
            )
        };
        let (w_a, cp_a) = run_pooled();
        let (w_b, cp_b) = run_pooled(); // second call reuses the pooled bundle
        assert_eq!(w_a, w_b);
        assert_eq!(cp_a, cp_b);

        let mut rng = StreamRng::new(8, Purpose::Batch, 3, 1);
        let (w_f, cp_f) = local_sgd_fresh(
            &model,
            &data,
            &w0,
            7,
            0.3,
            3,
            &ProjectionOp::Unconstrained,
            &mut rng,
            Some(4),
        );
        assert_eq!(w_a, w_f);
        assert_eq!(cp_a, cp_f);

        let mut rng = StreamRng::new(8, Purpose::Batch, 3, 1);
        let mut slot = vec![f32::NAN; 3]; // wrong size AND garbage contents
        let mut scratch = hm_nn::TrainScratch::default();
        scratch.grad.resize(99, f32::NAN);
        let cp_i = local_sgd_into(
            &model,
            &data,
            &w0,
            &mut slot,
            7,
            0.3,
            3,
            &ProjectionOp::Unconstrained,
            &mut rng,
            Some(4),
            &mut scratch,
        );
        assert_eq!(slot, w_a);
        assert_eq!(cp_i, cp_a);
    }

    #[test]
    fn estimate_loss_matches_full_batch_in_expectation() {
        let (model, data) = toy();
        let w = vec![0.1; model.num_params()];
        let full = model.loss(&w, &data);
        let mut acc = 0.0;
        let trials = 2000;
        for t in 0..trials {
            let mut rng = StreamRng::new(9, Purpose::Batch, t, 0);
            acc += estimate_loss(&model, &data, &w, 4, &mut rng);
        }
        let mc = acc / trials as f64;
        assert!((mc - full).abs() < 0.02, "mc {mc} vs full {full}");
    }
}
