//! Empirical verification of the paper's analysis machinery.
//!
//! Lemma 1 (Bounded Squared Model Divergence) bounds the time-averaged
//! squared distance between local models and the virtual global model:
//!
//! ```text
//! (1/mT) Σ_t Σ_{n ∈ S(t)} E‖w(t) − w_n(t)‖²
//!   ≤ 20 η² τ1² ((m+1)/m σ_w² + Ψ) + 20 η² τ1² τ2² ((m_E+1)/N0 σ_w² + Ψ)
//! ```
//!
//! This module measures the left side directly — with a *lockstep*
//! re-implementation of Phase 1 that advances every client one SGD slot at
//! a time — and estimates the right side's problem constants (`σ_w²` from
//! mini-batch gradient variance, `Ψ` from gradient dissimilarity), so the
//! `lemma1` bench can print measured-vs-bound across (τ1, τ2) settings.
//! The measured value must sit below the bound and grow with τ1, τ2, and η
//! the way the lemma says.

use crate::problem::FederatedProblem;
use hm_data::batch::{sample_batch_into, BatchScratch};
use hm_data::rng::{Purpose, StreamKey, StreamRng};
use hm_data::Dataset;
use hm_nn::Workspace;
use hm_optim::sgd::projected_sgd_step;
use hm_simnet::sampling::sample_edges_weighted;
use hm_tensor::vecops;

/// Estimated problem constants of Assumptions 4–5.
#[derive(Debug, Clone, Copy)]
pub struct ProblemConstants {
    /// Mini-batch stochastic-gradient variance bound `σ_w²` (max over
    /// sampled clients of `E‖∇f(w;ξ) − ∇f(w)‖²`).
    pub sigma_w_sq: f64,
    /// Gradient dissimilarity `Ψ = sup_e Σ_j p_j ‖∇f_e − ∇f_j‖²` at
    /// uniform `p`.
    pub psi: f64,
}

/// Estimate `σ_w²` and `Ψ` at the model point `w`, with the given batch
/// size and Monte-Carlo trial count.
pub fn estimate_constants(
    problem: &FederatedProblem,
    w: &[f32],
    batch_size: usize,
    trials: usize,
    seed: u64,
) -> ProblemConstants {
    let model = &problem.model;
    let d = problem.num_params();
    let n0 = problem.clients_per_edge();
    let mut grad = vec![0.0_f32; d];
    let mut scratch = BatchScratch::new();
    let mut ws = Workspace::new();

    // σ_w²: worst over clients of the batch-gradient variance.
    let mut sigma_w_sq = 0.0_f64;
    let topo = problem.topology();
    let mut full = vec![0.0_f32; d];
    for e in 0..problem.num_edges() {
        for c in 0..n0 {
            let data = problem.client_data(e, c);
            model.loss_grad_ws(w, data, &mut full, &mut ws);
            let mut acc = 0.0_f64;
            for t in 0..trials {
                let mut rng = StreamRng::for_key(StreamKey::new(
                    seed,
                    Purpose::Misc,
                    t as u64,
                    topo.client_id(e, c) as u64,
                ));
                sample_batch_into(data, batch_size, &mut rng, &mut scratch);
                model.loss_grad_ws(w, &scratch.batch, &mut grad, &mut ws);
                acc += vecops::dist2_sq(&grad, &full);
            }
            sigma_w_sq = sigma_w_sq.max(acc / trials as f64);
        }
    }

    // Ψ at uniform p: sup_e mean_j ‖∇f_e − ∇f_j‖².
    let edge_grads: Vec<Vec<f32>> = (0..problem.num_edges())
        .map(|e| {
            let data: Dataset = problem.scenario.edges[e].train_concat();
            let mut g = vec![0.0_f32; d];
            model.loss_grad_ws(w, &data, &mut g, &mut ws);
            g
        })
        .collect();
    let ne = edge_grads.len();
    let mut psi = 0.0_f64;
    for e in 0..ne {
        let mut acc = 0.0_f64;
        for j in 0..ne {
            acc += vecops::dist2_sq(&edge_grads[e], &edge_grads[j]) / ne as f64;
        }
        psi = psi.max(acc);
    }
    ProblemConstants { sigma_w_sq, psi }
}

/// Result of a lockstep divergence measurement.
#[derive(Debug, Clone, Copy)]
pub struct DivergenceReport {
    /// Measured `(1/mT) Σ_t Σ_n ‖w(t) − w_n(t)‖²`.
    pub measured: f64,
    /// Lemma 1's right-hand side, using the estimated constants.
    pub bound: f64,
    /// The step-size condition `1 − 20 η² L² τ1² (1 + τ2²) ≥ ½` checked
    /// with the supplied smoothness estimate (the lemma assumes it).
    pub step_condition_ok: bool,
}

/// Parameters of the lockstep Phase-1 run.
#[derive(Debug, Clone, Copy)]
pub struct DivergenceConfig {
    /// Training rounds to average over.
    pub rounds: usize,
    /// Local steps per client-edge aggregation.
    pub tau1: usize,
    /// Client-edge aggregations per round.
    pub tau2: usize,
    /// Participating edges per round.
    pub m_edges: usize,
    /// Model learning rate.
    pub eta_w: f32,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Smoothness estimate `L` for the step-size condition check.
    pub smoothness: f64,
}

/// Run Phase 1 in lockstep (all clients advance one slot at a time, as the
/// analysis models it) and measure Lemma 1's left side; the weights stay
/// uniform (the lemma is about the model trajectory, not the `p` update).
pub fn measure_divergence(
    problem: &FederatedProblem,
    cfg: &DivergenceConfig,
    seed: u64,
) -> DivergenceReport {
    let d = problem.num_params();
    let n0 = problem.clients_per_edge();
    let m = cfg.m_edges * n0;
    let model = &problem.model;
    let topo = problem.topology();
    let mut w_global = model.init_params(&mut StreamRng::for_key(StreamKey::new(
        seed,
        Purpose::Init,
        0,
        0,
    )));
    let p = vec![1.0_f64 / problem.num_edges() as f64; problem.num_edges()];

    let mut total = 0.0_f64;
    let mut slots = 0usize;
    let mut grad = vec![0.0_f32; d];
    let mut scratch = BatchScratch::new();
    let mut ws = Workspace::new();
    for k in 0..cfg.rounds {
        let mut e_rng =
            StreamRng::for_key(StreamKey::new(seed, Purpose::EdgeSampling, k as u64, 0));
        let sampled = sample_edges_weighted(&p, cfg.m_edges, &mut e_rng);
        // Lockstep state: one model per sampled slot's client (duplicated
        // edges share data but evolve independently in the analysis; we use
        // distinct RNG lanes per slot to match the i.i.d. sampling model).
        let mut locals: Vec<Vec<f32>> = vec![w_global.clone(); m];
        let mut rngs: Vec<StreamRng> = (0..m)
            .map(|i| {
                StreamRng::for_key(StreamKey::new(
                    seed,
                    Purpose::Batch,
                    k as u64,
                    (1_000_000 + i) as u64,
                ))
            })
            .collect();
        for t2 in 0..cfg.tau2 {
            for _t1 in 0..cfg.tau1 {
                // One lockstep slot: every client steps once.
                for (slot, local) in locals.iter_mut().enumerate() {
                    let e = sampled[slot / n0];
                    let c = slot % n0;
                    let _ = topo; // data addressed via (e, c)
                    sample_batch_into(
                        problem.client_data(e, c),
                        cfg.batch_size,
                        &mut rngs[slot],
                        &mut scratch,
                    );
                    model.loss_grad_ws(local, &scratch.batch, &mut grad, &mut ws);
                    projected_sgd_step(local, &grad, cfg.eta_w, &problem.w_domain);
                }
                // Virtual global model and divergence at this slot.
                let refs: Vec<&[f32]> = locals.iter().map(|l| l.as_slice()).collect();
                let mut w_bar = vec![0.0_f32; d];
                vecops::average_into(&refs, &mut w_bar);
                let div: f64 = locals
                    .iter()
                    .map(|l| vecops::dist2_sq(l, &w_bar))
                    .sum::<f64>()
                    / m as f64;
                total += div;
                slots += 1;
            }
            // Client-edge aggregation at the end of each block.
            let _ = t2;
            for g in 0..cfg.m_edges {
                let group: Vec<&[f32]> = (0..n0).map(|c| locals[g * n0 + c].as_slice()).collect();
                let mut agg = vec![0.0_f32; d];
                vecops::average_into(&group, &mut agg);
                for c in 0..n0 {
                    locals[g * n0 + c].copy_from_slice(&agg);
                }
            }
        }
        // Edge-cloud aggregation.
        let refs: Vec<&[f32]> = locals.iter().map(|l| l.as_slice()).collect();
        vecops::average_into(&refs, &mut w_global);
    }
    let measured = total / slots as f64;

    // Lemma 1's right side with constants estimated at the final model.
    let consts = estimate_constants(problem, &w_global, cfg.batch_size, 16, seed ^ 0xABCD);
    let eta = f64::from(cfg.eta_w);
    let t1 = cfg.tau1 as f64;
    let t2 = cfg.tau2 as f64;
    let m_f = m as f64;
    let me = cfg.m_edges as f64;
    let n0_f = n0 as f64;
    let bound = 20.0 * eta * eta * t1 * t1 * ((m_f + 1.0) / m_f * consts.sigma_w_sq + consts.psi)
        + 20.0
            * eta
            * eta
            * t1
            * t1
            * t2
            * t2
            * ((me + 1.0) / n0_f * consts.sigma_w_sq + consts.psi);
    let step_condition_ok =
        1.0 - 20.0 * eta * eta * cfg.smoothness * cfg.smoothness * t1 * t1 * (1.0 + t2 * t2) >= 0.5;
    DivergenceReport {
        measured,
        bound,
        step_condition_ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hm_data::scenarios::tiny_problem;

    fn problem() -> FederatedProblem {
        let sc = tiny_problem(4, 2, 91);
        FederatedProblem::logistic_from_scenario(&sc)
    }

    fn cfg(tau1: usize, tau2: usize, eta: f32) -> DivergenceConfig {
        DivergenceConfig {
            rounds: 12,
            tau1,
            tau2,
            m_edges: 2,
            eta_w: eta,
            batch_size: 2,
            smoothness: 1.0,
        }
    }

    #[test]
    fn measured_divergence_respects_the_bound() {
        let fp = problem();
        let r = measure_divergence(&fp, &cfg(2, 2, 0.02), 3);
        assert!(
            r.step_condition_ok,
            "step-size condition violated in test setup"
        );
        assert!(
            r.measured <= r.bound,
            "Lemma 1 violated: measured {} > bound {}",
            r.measured,
            r.bound
        );
        assert!(r.measured > 0.0, "divergence should be strictly positive");
    }

    #[test]
    fn divergence_grows_with_tau1() {
        let fp = problem();
        let a = measure_divergence(&fp, &cfg(1, 2, 0.05), 3).measured;
        let b = measure_divergence(&fp, &cfg(4, 2, 0.05), 3).measured;
        assert!(b > a, "divergence should grow with tau1: {a} vs {b}");
    }

    #[test]
    fn divergence_grows_with_eta() {
        let fp = problem();
        let a = measure_divergence(&fp, &cfg(2, 2, 0.01), 3).measured;
        let b = measure_divergence(&fp, &cfg(2, 2, 0.08), 3).measured;
        assert!(b > a, "divergence should grow with eta: {a} vs {b}");
    }

    #[test]
    fn constants_are_positive_and_finite() {
        let fp = problem();
        let w = vec![0.01_f32; fp.num_params()];
        let c = estimate_constants(&fp, &w, 2, 8, 1);
        assert!(c.sigma_w_sq.is_finite() && c.sigma_w_sq > 0.0);
        assert!(c.psi.is_finite() && c.psi > 0.0);
    }
}
