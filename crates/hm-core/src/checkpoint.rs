//! Bridge between the algorithm run loops and `hm-checkpoint`.
//!
//! `hm-checkpoint` sits below this crate (it knows `hm-data` and
//! `hm-simnet` but not `History` or `EvalReport`), so the round history is
//! serialised here into a snapshot's named `extras` section using the
//! public byte primitives. The run loops interact with checkpointing
//! through three calls:
//!
//! 1. [`ResumedRun::from_opts`] at run start — decode the snapshot in
//!    `RunOpts::checkpoint.resume` (if any) into loop state;
//! 2. [`emit_preamble`] — emit `run_start` (fresh) or an unsequenced
//!    `run_resume` (resumed) so later `checkpoint` events carry the same
//!    sequence numbers as the uninterrupted run's;
//! 3. [`CheckpointCtx::after_round`] at each round boundary — write a
//!    snapshot when the cadence says one is due.
//!
//! A failed snapshot *write* warns on stderr and lets training continue
//! (a checkpoint is insurance, not a correctness dependency); a corrupt
//! or mismatched snapshot *read* is a typed error long before any
//! training state is touched.

use crate::algorithms::{IterateAverage, RunOpts};
use crate::history::{History, RoundRecord};
use crate::metrics::EvalReport;
use hm_checkpoint::format::{ByteReader, ByteWriter};
use hm_checkpoint::{
    rng_cursors_for, snapshot_path, write_snapshot, Cadence, CheckpointError, Snapshot,
};
use hm_simnet::{ChurnStats, CommStats, FaultStats, QuarantineStats};
use hm_telemetry::{Telemetry, TelemetryEvent};
use std::path::PathBuf;
use std::sync::Arc;

/// Extras section name holding the serialised round history.
const HISTORY_SECTION: &str = "history";

/// Extras section name holding the quarantine horizon table and the
/// cumulative adversary counters. Written only by runs with an active
/// adversary or quarantine pass, so adversary-off snapshots stay
/// byte-identical to pre-robust builds.
pub(crate) const QUARANTINE_SECTION: &str = "quarantine";

/// Serialise the quarantine horizon table (per-global-client first
/// re-admission round) plus the cumulative adversary counters.
pub(crate) fn encode_quarantine(until: &[u64], adv: &QuarantineStats) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(adv.corrupted_updates);
    w.put_u64(adv.quarantined_clients);
    w.put_u64(adv.excluded_uploads);
    w.put_u64(until.len() as u64);
    for &u in until {
        w.put_u64(u);
    }
    w.into_bytes()
}

/// Inverse of [`encode_quarantine`].
pub(crate) fn decode_quarantine(
    bytes: &[u8],
) -> Result<(Vec<u64>, QuarantineStats), CheckpointError> {
    let mut r = ByteReader::new(bytes);
    let adv = QuarantineStats {
        corrupted_updates: r.get_u64()?,
        quarantined_clients: r.get_u64()?,
        excluded_uploads: r.get_u64()?,
    };
    let n = r.get_u64()? as usize;
    let mut until = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        until.push(r.get_u64()?);
    }
    if r.remaining() != 0 {
        return Err(CheckpointError::Malformed(
            "trailing bytes after quarantine state".into(),
        ));
    }
    Ok((until, adv))
}

/// Extras section name holding the membership-churn state: the active
/// topology (edge up/down flags, per-edge member lists, join cursor), the
/// joiner provenance needed to re-mint shards, the cumulative churn
/// counters, and the run loop's consecutive stale-round counter. Written
/// only by runs with an active churn plan, so churn-off snapshots stay
/// byte-identical to pre-churn builds.
pub(crate) const CHURN_SECTION: &str = "churn";

/// Decoded contents of a snapshot's [`CHURN_SECTION`].
pub(crate) struct ChurnSnapshot {
    pub base_total: usize,
    pub edge_up: Vec<bool>,
    pub members: Vec<Vec<usize>>,
    pub next_join_id: usize,
    pub stats: ChurnStats,
    pub joined_src: Vec<(usize, usize)>,
    pub stale_rounds: u64,
}

/// Serialise the membership-churn state for [`CHURN_SECTION`].
pub(crate) fn encode_churn(
    base_total: usize,
    edge_up: &[bool],
    members: &[Vec<usize>],
    next_join_id: usize,
    stats: &ChurnStats,
    joined_src: &[(usize, usize)],
    stale_rounds: u64,
) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(base_total as u64);
    w.put_u64(edge_up.len() as u64);
    for &up in edge_up {
        w.put_u8(u8::from(up));
    }
    w.put_u64(members.len() as u64);
    for edge in members {
        w.put_u64(edge.len() as u64);
        for &gid in edge {
            w.put_u64(gid as u64);
        }
    }
    w.put_u64(next_join_id as u64);
    w.put_u64(stats.joined);
    w.put_u64(stats.left);
    w.put_u64(stats.edge_failures);
    w.put_u64(stats.rehomed);
    w.put_u64(stats.stranded);
    w.put_u64(joined_src.len() as u64);
    for &(gid, home) in joined_src {
        w.put_u64(gid as u64);
        w.put_u64(home as u64);
    }
    w.put_u64(stale_rounds);
    w.into_bytes()
}

/// Inverse of [`encode_churn`].
pub(crate) fn decode_churn(bytes: &[u8]) -> Result<ChurnSnapshot, CheckpointError> {
    let mut r = ByteReader::new(bytes);
    let base_total = r.get_u64()? as usize;
    let n_up = r.get_u64()? as usize;
    let mut edge_up = Vec::with_capacity(n_up.min(1 << 20));
    for _ in 0..n_up {
        edge_up.push(r.get_u8()? != 0);
    }
    let n_edges = r.get_u64()? as usize;
    let mut members = Vec::with_capacity(n_edges.min(1 << 20));
    for _ in 0..n_edges {
        let len = r.get_u64()? as usize;
        let mut edge = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            edge.push(r.get_u64()? as usize);
        }
        members.push(edge);
    }
    let next_join_id = r.get_u64()? as usize;
    let stats = ChurnStats {
        joined: r.get_u64()?,
        left: r.get_u64()?,
        edge_failures: r.get_u64()?,
        rehomed: r.get_u64()?,
        stranded: r.get_u64()?,
    };
    let n_joined = r.get_u64()? as usize;
    let mut joined_src = Vec::with_capacity(n_joined.min(1 << 20));
    for _ in 0..n_joined {
        let gid = r.get_u64()? as usize;
        let home = r.get_u64()? as usize;
        joined_src.push((gid, home));
    }
    let stale_rounds = r.get_u64()?;
    if r.remaining() != 0 {
        return Err(CheckpointError::Malformed(
            "trailing bytes after churn state".into(),
        ));
    }
    if edge_up.len() != members.len() {
        return Err(CheckpointError::Malformed(format!(
            "churn state edge count mismatch: {} up-flags vs {} member lists",
            edge_up.len(),
            members.len()
        )));
    }
    Ok(ChurnSnapshot {
        base_total,
        edge_up,
        members,
        next_join_id,
        stats,
        joined_src,
        stale_rounds,
    })
}

/// Checkpoint settings carried in [`RunOpts`].
#[derive(Debug, Clone, Default)]
pub struct CheckpointOpts {
    /// Directory snapshots are written into (created on demand). `None`
    /// disables writing regardless of cadence.
    pub dir: Option<PathBuf>,
    /// How often to write (default: never).
    pub cadence: Cadence,
    /// Snapshot to resume from. Must satisfy
    /// [`Snapshot::validate_for`] the run's `(algorithm, seed, rounds)`;
    /// the run loops assert this, the CLI checks it up front for a typed
    /// error.
    pub resume: Option<Arc<Snapshot>>,
}

impl CheckpointOpts {
    /// Write snapshots under `dir` every `every` cloud rounds.
    pub fn writing(dir: impl Into<PathBuf>, every: usize) -> Self {
        Self {
            dir: Some(dir.into()),
            cadence: Cadence::every(every),
            ..Self::default()
        }
    }

    /// Resume from `snap` (validated by the run loop against its own
    /// identity).
    pub fn resuming(snap: Arc<Snapshot>) -> Self {
        Self {
            resume: Some(snap),
            ..Self::default()
        }
    }
}

/// Serialise a [`History`] into snapshot bytes.
pub fn encode_history(h: &History) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(h.rounds.len() as u64);
    for r in &h.rounds {
        w.put_u64(r.round as u64);
        w.put_u64(r.slots_done as u64);
        for row in r.comm.parts() {
            for v in row {
                w.put_u64(v);
            }
        }
        w.put_vec_f32(&r.p);
        match &r.eval {
            None => w.put_u8(0),
            Some(e) => {
                w.put_u8(1);
                w.put_vec_f64(&e.per_edge_accuracy);
                w.put_f64(e.average);
                w.put_f64(e.worst);
                w.put_f64(e.variance_pp);
            }
        }
    }
    w.into_bytes()
}

/// Inverse of [`encode_history`].
pub fn decode_history(bytes: &[u8]) -> Result<History, CheckpointError> {
    let mut r = ByteReader::new(bytes);
    let n = r.get_u64()?;
    let mut history = History::default();
    for _ in 0..n {
        let round = r.get_u64()? as usize;
        let slots_done = r.get_u64()? as usize;
        let mut parts = [[0u64; 3]; 5];
        for row in parts.iter_mut() {
            for v in row.iter_mut() {
                *v = r.get_u64()?;
            }
        }
        let comm = CommStats::from_parts(parts);
        let p = r.get_vec_f32()?;
        let eval = match r.get_u8()? {
            0 => None,
            1 => Some(EvalReport {
                per_edge_accuracy: r.get_vec_f64()?,
                average: r.get_f64()?,
                worst: r.get_f64()?,
                variance_pp: r.get_f64()?,
            }),
            tag => {
                return Err(CheckpointError::Malformed(format!(
                    "bad eval presence tag {tag}"
                )))
            }
        };
        history.push(RoundRecord {
            round,
            slots_done,
            comm,
            p,
            eval,
        });
    }
    if r.remaining() != 0 {
        return Err(CheckpointError::Malformed(
            "trailing bytes after history".into(),
        ));
    }
    Ok(history)
}

/// Loop state decoded from a resume snapshot.
#[derive(Debug)]
pub(crate) struct ResumedRun {
    /// First round to execute.
    pub start_round: usize,
    /// Global model at the boundary.
    pub w: Vec<f32>,
    /// Dual weights (or per-client `q` for the flat fair baselines).
    pub p: Vec<f32>,
    /// Restored iterate-average accumulators.
    pub avg_w: IterateAverage,
    pub avg_p: IterateAverage,
    /// History through the boundary.
    pub history: History,
    /// Cumulative counters to restore into the meter / injector.
    pub comm: CommStats,
    pub faults: FaultStats,
    /// Telemetry position to continue the event sequence from.
    pub telemetry_seq: u64,
    /// The snapshot itself, for algorithm-specific extras.
    pub snap: Arc<Snapshot>,
}

impl ResumedRun {
    /// Decode `opts.checkpoint.resume` for a run identified by
    /// `(algorithm, seed, rounds)`, or `None` for a fresh start.
    ///
    /// # Panics
    /// Panics if the snapshot fails [`Snapshot::validate_for`] or its
    /// history section is missing/corrupt — callers that want a typed
    /// error (the CLI) validate before building `RunOpts`.
    pub fn from_opts(
        opts: &RunOpts,
        algorithm: &str,
        seed: u64,
        rounds: usize,
    ) -> Option<ResumedRun> {
        let snap = opts.checkpoint.resume.as_ref()?.clone();
        if let Err(e) = snap.validate_for(algorithm, seed, rounds) {
            panic!("cannot resume: {e}");
        }
        let history = snap
            .extra(HISTORY_SECTION)
            .ok_or_else(|| CheckpointError::Malformed("snapshot has no history section".into()))
            .and_then(decode_history)
            .unwrap_or_else(|e| panic!("cannot resume: {e}"));
        Some(ResumedRun {
            start_round: snap.next_round as usize,
            w: snap.w.clone(),
            p: snap.p.clone(),
            avg_w: IterateAverage::from_parts(snap.avg_w_sum.clone(), snap.avg_w_count),
            avg_p: IterateAverage::from_parts(snap.avg_p_sum.clone(), snap.avg_p_count),
            history,
            comm: snap.comm,
            faults: snap.faults,
            telemetry_seq: snap.telemetry_seq,
            snap,
        })
    }
}

/// Emit the run preamble: `run_start` for a fresh run (resetting the
/// event counter), or an unsequenced `run_resume` continuing the
/// checkpointed sequence position.
pub(crate) fn emit_preamble(
    tel: &Telemetry,
    resumed: Option<&ResumedRun>,
    algorithm: &str,
    rounds: usize,
    n_edges: usize,
    num_params: usize,
    seed: u64,
) {
    match resumed {
        Some(rr) => {
            tel.set_seq(rr.telemetry_seq);
            let (next_round, seq) = (rr.start_round, rr.telemetry_seq);
            tel.record_unsequenced(|| TelemetryEvent::RunResume {
                algorithm: algorithm.to_string(),
                rounds,
                next_round,
                seed,
                seq,
            });
        }
        None => {
            tel.set_seq(0);
            tel.record(|| TelemetryEvent::RunStart {
                algorithm: algorithm.to_string(),
                rounds,
                n_edges,
                num_params,
                seed,
            });
        }
    }
}

/// Per-run checkpointing context held by a run loop.
pub(crate) struct CheckpointCtx<'a> {
    opts: &'a RunOpts,
    algorithm: &'a str,
    seed: u64,
    rounds: usize,
    /// Whether this run emits `checkpoint` telemetry events (false for
    /// the baselines that emit no `run_start`, whose streams must stay
    /// schema-valid).
    emit_events: bool,
}

impl<'a> CheckpointCtx<'a> {
    pub(crate) fn new(
        opts: &'a RunOpts,
        algorithm: &'a str,
        seed: u64,
        rounds: usize,
        emit_events: bool,
    ) -> Self {
        Self {
            opts,
            algorithm,
            seed,
            rounds,
            emit_events,
        }
    }

    /// Write a snapshot after round `round` (0-based) completed, if the
    /// cadence says one is due. Never checkpoints the final round —
    /// there is nothing left to resume.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn after_round(
        &self,
        round: usize,
        w: &[f32],
        p: &[f32],
        avg_w: &IterateAverage,
        avg_p: &IterateAverage,
        history: &History,
        comm: CommStats,
        faults: FaultStats,
        extra_sections: Vec<(String, Vec<u8>)>,
    ) {
        let Some(dir) = &self.opts.checkpoint.dir else {
            return;
        };
        if !self.opts.checkpoint.cadence.due(round) || round + 1 >= self.rounds {
            return;
        }
        let tel = &self.opts.telemetry;
        if self.emit_events {
            let seq = tel.seq() + 1; // count includes the checkpoint event
            tel.record(|| TelemetryEvent::Checkpoint { round, seq });
        }
        let (avg_w_sum, avg_w_count) = avg_w.parts();
        let (avg_p_sum, avg_p_count) = avg_p.parts();
        let mut extras = vec![(HISTORY_SECTION.to_string(), encode_history(history))];
        extras.extend(extra_sections);
        let snap = Snapshot {
            algorithm: self.algorithm.to_string(),
            seed: self.seed,
            total_rounds: self.rounds as u64,
            next_round: (round + 1) as u64,
            w: w.to_vec(),
            p: p.to_vec(),
            avg_w_sum: avg_w_sum.to_vec(),
            avg_w_count,
            avg_p_sum: avg_p_sum.to_vec(),
            avg_p_count,
            comm,
            faults,
            telemetry_seq: tel.seq(),
            rng_cursors: rng_cursors_for(self.seed, (round + 1) as u64),
            extras,
        };
        let path = snapshot_path(dir, self.algorithm, round + 1);
        let write_timer = self.opts.profile.start();
        if let Err(e) = write_snapshot(&path, &snap) {
            eprintln!(
                "warning: failed to write checkpoint {}: {e}",
                path.display()
            );
        }
        self.opts.profile.record(
            tel,
            hm_telemetry::Phase::CheckpointWrite,
            Some(round),
            None,
            write_timer,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hm_simnet::{CommMeter, Link};

    fn sample_history() -> History {
        let m = CommMeter::new();
        m.record_gather(Link::ClientEdge, 10, 4);
        m.record_round(Link::EdgeCloud);
        let mut h = History::default();
        h.push(RoundRecord {
            round: 0,
            slots_done: 4,
            comm: m.snapshot(),
            p: vec![0.5, 0.5],
            eval: None,
        });
        m.record_round(Link::EdgeCloud);
        h.push(RoundRecord {
            round: 1,
            slots_done: 8,
            comm: m.snapshot(),
            p: vec![0.25, 0.75],
            eval: Some(EvalReport::from_accuracies(vec![0.7, 0.9])),
        });
        h
    }

    #[test]
    fn history_roundtrip() {
        let h = sample_history();
        let bytes = encode_history(&h);
        let back = decode_history(&bytes).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn empty_history_roundtrip() {
        let h = History::default();
        assert_eq!(decode_history(&encode_history(&h)).unwrap(), h);
    }

    #[test]
    fn corrupt_history_is_typed_error() {
        let mut bytes = encode_history(&sample_history());
        bytes.truncate(bytes.len() - 1);
        assert!(decode_history(&bytes).is_err());
        assert!(decode_history(&[0, 0, 0]).is_err());
    }

    #[test]
    fn quarantine_roundtrip() {
        let until = vec![0u64, 7, 0, 12];
        let adv = QuarantineStats {
            corrupted_updates: 31,
            quarantined_clients: 2,
            excluded_uploads: 9,
        };
        let bytes = encode_quarantine(&until, &adv);
        let (u2, a2) = decode_quarantine(&bytes).unwrap();
        assert_eq!(u2, until);
        assert_eq!(a2, adv);
        // Truncated state is a typed error, not a panic.
        assert!(decode_quarantine(&bytes[..bytes.len() - 1]).is_err());
        assert!(decode_quarantine(&[1, 2]).is_err());
    }
}
