//! Per-round training history and the derived headline quantities
//! ("communication rounds to reach X% worst accuracy").

use crate::metrics::EvalReport;
use hm_simnet::CommStats;
use std::fmt::Write as _;

/// Snapshot taken at the end of one training round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRecord {
    /// Training round index `k` (0-based).
    pub round: usize,
    /// Total time slots elapsed (`(k+1)·τ1·τ2` for hierarchical methods).
    pub slots_done: usize,
    /// Cumulative communication counters at the end of the round.
    pub comm: CommStats,
    /// The edge-weight vector after this round's update (uniform and
    /// constant for minimization baselines).
    pub p: Vec<f32>,
    /// Test evaluation, when this round was an evaluation round.
    pub eval: Option<EvalReport>,
}

/// The full per-round history of a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct History {
    /// One record per training round, in order.
    pub rounds: Vec<RoundRecord>,
}

impl History {
    /// Append a record.
    ///
    /// # Panics
    /// Panics if rounds are appended out of order.
    pub fn push(&mut self, rec: RoundRecord) {
        if let Some(last) = self.rounds.last() {
            assert!(rec.round > last.round, "history rounds out of order");
        }
        self.rounds.push(rec);
    }

    /// Last evaluation report, if any round was evaluated.
    pub fn final_eval(&self) -> Option<&EvalReport> {
        self.rounds.iter().rev().find_map(|r| r.eval.as_ref())
    }

    /// Cloud communication rounds at the first evaluated round whose worst
    /// accuracy reaches `target` — the paper's headline metric ("to reach
    /// 80% worst accuracy, HierMinimax takes only 8200 communication
    /// rounds"). `None` when the target is never reached.
    pub fn cloud_rounds_to_worst(&self, target: f64) -> Option<u64> {
        self.cloud_rounds_to_worst_sustained(target, 1)
    }

    /// Like [`History::cloud_rounds_to_worst`], but requires `consecutive`
    /// successive evaluations at or above the target, which filters the
    /// single-evaluation noise spikes of small test sets. Returns the cloud
    /// rounds at the *first* evaluation of the sustained run.
    pub fn cloud_rounds_to_worst_sustained(&self, target: f64, consecutive: usize) -> Option<u64> {
        assert!(consecutive >= 1, "need at least one evaluation");
        let evald: Vec<&RoundRecord> = self.rounds.iter().filter(|r| r.eval.is_some()).collect();
        let mut streak = 0usize;
        for (i, r) in evald.iter().enumerate() {
            if r.eval.as_ref().expect("filtered").worst >= target {
                streak += 1;
                if streak >= consecutive {
                    return Some(evald[i + 1 - consecutive].comm.cloud_rounds());
                }
            } else {
                streak = 0;
            }
        }
        None
    }

    /// Same headline metric against average accuracy.
    pub fn cloud_rounds_to_average(&self, target: f64) -> Option<u64> {
        self.rounds
            .iter()
            .find(|r| r.eval.as_ref().is_some_and(|e| e.average >= target))
            .map(|r| r.comm.cloud_rounds())
    }

    /// Simulated wall-clock at the end of each round under a latency
    /// model: `(seconds, cloud_rounds)` pairs, one per round. Lets
    /// "time-to-accuracy" be derived from any recorded run without
    /// re-running it.
    pub fn time_series(&self, model: &hm_simnet::LatencyModel) -> Vec<(f64, u64)> {
        self.rounds
            .iter()
            .map(|r| {
                (
                    model.simulated_seconds(&r.comm, r.slots_done),
                    r.comm.cloud_rounds(),
                )
            })
            .collect()
    }

    /// Series of `(cloud_rounds, worst, average)` at evaluated rounds — the
    /// data behind Figs. 3 and 4.
    pub fn accuracy_series(&self) -> Vec<(u64, f64, f64)> {
        self.rounds
            .iter()
            .filter_map(|r| {
                r.eval
                    .as_ref()
                    .map(|e| (r.comm.cloud_rounds(), e.worst, e.average))
            })
            .collect()
    }

    /// CSV dump (one line per evaluated round) for external plotting.
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("round,slots,cloud_rounds,total_floats,worst_acc,avg_acc,variance_pp\n");
        for r in &self.rounds {
            if let Some(e) = &r.eval {
                let _ = writeln!(
                    out,
                    "{},{},{},{},{:.6},{:.6},{:.4}",
                    r.round,
                    r.slots_done,
                    r.comm.cloud_rounds(),
                    r.comm.total_floats(),
                    e.worst,
                    e.average,
                    e.variance_pp
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hm_simnet::{CommMeter, Link};

    fn rec(round: usize, cloud_rounds: u64, worst: f64) -> RoundRecord {
        let m = CommMeter::new();
        for _ in 0..cloud_rounds {
            m.record_round(Link::EdgeCloud);
        }
        RoundRecord {
            round,
            slots_done: (round + 1) * 4,
            comm: m.snapshot(),
            p: vec![0.5, 0.5],
            eval: Some(EvalReport::from_accuracies(vec![worst, worst + 0.1])),
        }
    }

    #[test]
    fn rounds_to_target() {
        let mut h = History::default();
        h.push(rec(0, 2, 0.3));
        h.push(rec(1, 4, 0.5));
        h.push(rec(2, 6, 0.8));
        assert_eq!(h.cloud_rounds_to_worst(0.5), Some(4));
        assert_eq!(h.cloud_rounds_to_worst(0.79), Some(6));
        assert_eq!(h.cloud_rounds_to_worst(0.95), None);
    }

    #[test]
    fn final_eval_picks_last_evaluated() {
        let mut h = History::default();
        h.push(rec(0, 2, 0.3));
        let mut quiet = rec(1, 4, 0.9);
        quiet.eval = None;
        h.push(quiet);
        assert!((h.final_eval().unwrap().worst - 0.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn out_of_order_push_panics() {
        let mut h = History::default();
        h.push(rec(1, 2, 0.5));
        h.push(rec(0, 4, 0.5));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut h = History::default();
        h.push(rec(0, 2, 0.3));
        let csv = h.to_csv();
        assert!(csv.starts_with("round,"));
        assert_eq!(csv.lines().count(), 2);
    }

    #[test]
    fn time_series_is_monotone() {
        let mut h = History::default();
        h.push(rec(0, 2, 0.3));
        h.push(rec(1, 5, 0.5));
        h.push(rec(2, 9, 0.7));
        let model = hm_simnet::LatencyModel::mobile_edge();
        let ts = h.time_series(&model);
        assert_eq!(ts.len(), 3);
        assert!(ts.windows(2).all(|w| w[0].0 <= w[1].0), "{ts:?}");
        assert!(ts[0].0 > 0.0);
    }

    #[test]
    fn accuracy_series_extracts_pairs() {
        let mut h = History::default();
        h.push(rec(0, 2, 0.3));
        h.push(rec(1, 5, 0.6));
        let s = h.accuracy_series();
        assert_eq!(s.len(), 2);
        assert_eq!(s[1].0, 5);
        assert!((s[1].1 - 0.6).abs() < 1e-12);
    }
}
