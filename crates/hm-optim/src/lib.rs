//! Optimisation primitives for the HierMinimax reproduction.
//!
//! - [`projection`] — Euclidean projections onto the constraint sets the
//!   paper allows: the probability simplex `Δ` (for the edge weights `p`),
//!   capped simplices (the paper's "prior knowledge or parameter
//!   regularization" subsets `P ⊂ Δ`), L2 balls and boxes (for compact
//!   model domains `W`), and the unconstrained space.
//! - [`sgd`] — the projected-SGD step of eq. (4).
//! - [`schedules`] — the α-indexed learning-rate choices from Theorems 1
//!   and 2 that realise the communication/convergence tradeoff.

pub mod projection;
pub mod schedules;
pub mod sgd;

pub use projection::{Projection, ProjectionOp};
