//! The α-indexed parameter schedules from the paper's Theorems 1 and 2.
//!
//! For `T` total time slots and tradeoff exponent `α ∈ [0, 1)`:
//!
//! - `τ1 τ2 ∈ Θ(T^α)` gives edge-cloud communication complexity
//!   `Θ(T^{1−α})`.
//! - **Convex** (Theorem 1): `η_p = Θ(T^{−(1+α)/2})`, and
//!   `η_w = Θ(T^{−(1−2α)})` for `α ∈ (0, 1/4)`, else `η_w = Θ(T^{−1/2})`;
//!   duality gap `O(T^{−(1−α)/2})`.
//! - **Non-convex** (Theorem 2): `η_p = Θ(T^{−(1+3α)/4})`,
//!   `η_w = Θ(T^{−(3+α)/4})`; Moreau-envelope rate `O(T^{−(1−α)/4})`.

/// Whether the loss family is convex in `w` (selects Theorem 1 vs 2
/// schedules).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossClass {
    /// Convex in `w` (e.g. logistic regression) — Theorem 1.
    Convex,
    /// Non-convex in `w` (e.g. neural networks) — Theorem 2.
    NonConvex,
}

/// Concrete schedule derived from a `(T, α)` pair.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Total training time slots `T = K τ1 τ2`.
    pub total_slots: usize,
    /// Tradeoff exponent α.
    pub alpha: f64,
    /// Product `τ1 τ2 = ⌈T^α⌉`.
    pub tau_product: usize,
    /// Model learning rate `η_w` (up to the caller's constant factor).
    pub eta_w: f64,
    /// Weight learning rate `η_p`.
    pub eta_p: f64,
    /// Number of training rounds `K = ⌈T / (τ1 τ2)⌉`.
    pub rounds: usize,
    /// Predicted convergence-rate scale (`T^{−(1−α)/2}` convex,
    /// `T^{−(1−α)/4}` non-convex) — the paper's rate with constant 1.
    pub predicted_rate: f64,
    /// Edge-cloud communication complexity scale `T^{1−α}` (equals
    /// `rounds` up to rounding).
    pub predicted_comm: f64,
}

/// Build the Theorem-1/2 schedule for the given loss class, horizon, and α.
///
/// `base_eta_w` / `base_eta_p` are the constant factors in front of the
/// theorem's Θ(·) rates (problem-dependent; the theorems fix only the
/// exponents).
///
/// # Panics
/// Panics unless `0 ≤ α < 1` and `T ≥ 1`.
pub fn schedule(
    class: LossClass,
    total_slots: usize,
    alpha: f64,
    base_eta_w: f64,
    base_eta_p: f64,
) -> Schedule {
    assert!((0.0..1.0).contains(&alpha), "alpha {alpha} out of [0,1)");
    assert!(total_slots >= 1, "need at least one slot");
    let t = total_slots as f64;
    let tau_product = (t.powf(alpha).ceil() as usize).max(1);
    let rounds = total_slots.div_ceil(tau_product);
    let (eta_w, eta_p, rate) = match class {
        LossClass::Convex => {
            let eta_p = base_eta_p * t.powf(-(1.0 + alpha) / 2.0);
            let eta_w = if alpha > 0.0 && alpha < 0.25 {
                base_eta_w * t.powf(-(1.0 - 2.0 * alpha))
            } else {
                base_eta_w * t.powf(-0.5)
            };
            (eta_w, eta_p, t.powf(-(1.0 - alpha) / 2.0))
        }
        LossClass::NonConvex => {
            let eta_p = base_eta_p * t.powf(-(1.0 + 3.0 * alpha) / 4.0);
            let eta_w = base_eta_w * t.powf(-(3.0 + alpha) / 4.0);
            (eta_w, eta_p, t.powf(-(1.0 - alpha) / 4.0))
        }
    };
    Schedule {
        total_slots,
        alpha,
        tau_product,
        eta_w,
        eta_p,
        rounds,
        predicted_rate: rate,
        predicted_comm: t.powf(1.0 - alpha),
    }
}

/// Split a `τ1·τ2` budget into the `(τ1, τ2)` factor pair closest to square
/// (used when the caller fixes only the product, as Theorems 1–2 do).
pub fn split_tau(tau_product: usize) -> (usize, usize) {
    assert!(tau_product >= 1);
    let mut best = (1, tau_product);
    let mut best_gap = usize::MAX;
    for t1 in 1..=tau_product {
        if tau_product.is_multiple_of(t1) {
            let t2 = tau_product / t1;
            let gap = t1.abs_diff(t2);
            if gap < best_gap {
                best_gap = gap;
                best = (t1, t2);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_zero_recovers_stochastic_afl_scaling() {
        // τ1τ2 = 1, comm O(T), rate O(T^{-1/2}): the Stochastic-AFL point.
        let s = schedule(LossClass::Convex, 10_000, 0.0, 1.0, 1.0);
        assert_eq!(s.tau_product, 1);
        assert_eq!(s.rounds, 10_000);
        assert!((s.predicted_rate - 0.01).abs() < 1e-12); // T^{-1/2}
        assert!((s.predicted_comm - 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn comm_decreases_and_rate_worsens_with_alpha() {
        let t = 4096;
        let a = schedule(LossClass::Convex, t, 0.0, 1.0, 1.0);
        let b = schedule(LossClass::Convex, t, 0.5, 1.0, 1.0);
        let c = schedule(LossClass::Convex, t, 0.9, 1.0, 1.0);
        assert!(a.rounds > b.rounds && b.rounds > c.rounds);
        assert!(a.predicted_rate < b.predicted_rate && b.predicted_rate < c.predicted_rate);
    }

    #[test]
    fn eta_w_piecewise_convex() {
        let t = 10_000usize;
        let tf = t as f64;
        // α ∈ (0, 1/4): η_w = T^{-(1-2α)}.
        let s = schedule(LossClass::Convex, t, 0.1, 1.0, 1.0);
        assert!((s.eta_w - tf.powf(-0.8)).abs() < 1e-12);
        // α ≥ 1/4: η_w = T^{-1/2}.
        let s = schedule(LossClass::Convex, t, 0.5, 1.0, 1.0);
        assert!((s.eta_w - tf.powf(-0.5)).abs() < 1e-12);
    }

    #[test]
    fn nonconvex_exponents() {
        let t = 10_000usize;
        let tf = t as f64;
        let s = schedule(LossClass::NonConvex, t, 0.5, 1.0, 1.0);
        assert!((s.eta_p - tf.powf(-(1.0 + 1.5) / 4.0)).abs() < 1e-12);
        assert!((s.eta_w - tf.powf(-(3.5) / 4.0)).abs() < 1e-12);
        assert!((s.predicted_rate - tf.powf(-0.125)).abs() < 1e-12);
    }

    #[test]
    fn rounds_times_tau_covers_t() {
        for &alpha in &[0.0, 0.25, 0.5, 0.75] {
            let s = schedule(LossClass::Convex, 1000, alpha, 1.0, 1.0);
            assert!(s.rounds * s.tau_product >= 1000, "{s:?}");
            assert!((s.rounds - 1) * s.tau_product < 1000, "{s:?}");
        }
    }

    #[test]
    #[should_panic(expected = "out of [0,1)")]
    fn alpha_one_rejected() {
        let _ = schedule(LossClass::Convex, 10, 1.0, 1.0, 1.0);
    }

    #[test]
    fn split_tau_prefers_square() {
        assert_eq!(split_tau(1), (1, 1));
        assert_eq!(split_tau(4), (2, 2));
        assert_eq!(split_tau(12), (3, 4));
        let (a, b) = split_tau(7); // prime: 1×7
        assert_eq!(a * b, 7);
    }
}
