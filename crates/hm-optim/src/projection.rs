//! Euclidean projections onto the constraint sets of the paper.
//!
//! Both algorithm updates are *projected* steps: eq. (4) projects the model
//! onto `W` and eq. (7) projects the edge weights onto `P ⊆ Δ_{N_E−1}`.
//! The simplex projection is the O(n log n) sort-based algorithm of Duchi,
//! Shalev-Shwartz, Singer & Chandra (ICML 2008); the capped simplex adds a
//! per-coordinate upper bound via bisection on the dual variable.

/// A Euclidean projection operator onto a compact (or all of R^n) convex set.
pub trait Projection: Send + Sync {
    /// Project `x` onto the set in place.
    fn project(&self, x: &mut [f32]);

    /// Whether `x` lies in the set within tolerance `tol` (used by tests
    /// and debug assertions).
    fn contains(&self, x: &[f32], tol: f32) -> bool;
}

/// Enumerated projection operator. An enum (rather than trait objects
/// everywhere) keeps algorithm configs `Clone + Debug` and dispatch
/// branch-predictable in the SGD inner loop.
#[derive(Debug, Clone)]
pub enum ProjectionOp {
    /// No constraint (`W = R^d`, the setting of both paper experiments).
    Unconstrained,
    /// The probability simplex `{x : x ≥ 0, Σx = 1}`.
    Simplex,
    /// Capped simplex `{x : lo ≤ x_i ≤ hi, Σx = 1}` — the paper's
    /// "prior knowledge" subsets of `Δ`.
    CappedSimplex {
        /// Per-coordinate lower bound.
        lo: f32,
        /// Per-coordinate upper bound.
        hi: f32,
    },
    /// L2 ball of the given radius centred at the origin.
    L2Ball {
        /// Ball radius (> 0).
        radius: f32,
    },
    /// Axis-aligned box `[lo, hi]^n`.
    Box {
        /// Lower bound per coordinate.
        lo: f32,
        /// Upper bound per coordinate.
        hi: f32,
    },
}

impl ProjectionOp {
    /// How far `x` lies outside the set, as the largest single constraint
    /// violation (0.0 when feasible). Quantitative counterpart of
    /// [`Projection::contains`]: conformance checks use it to assert the
    /// post-projection iterate stays in `P` and to report *how badly* a
    /// broken projection strayed.
    pub fn feasibility_violation(&self, x: &[f32]) -> f64 {
        let bound_violation = |lo: f64, hi: f64| -> f64 {
            x.iter()
                .map(|&v| (lo - f64::from(v)).max(f64::from(v) - hi).max(0.0))
                .fold(0.0, f64::max)
        };
        let sum_violation = || -> f64 {
            let sum: f64 = x.iter().map(|&v| f64::from(v)).sum();
            (sum - 1.0).abs()
        };
        match *self {
            ProjectionOp::Unconstrained => 0.0,
            ProjectionOp::Simplex => bound_violation(0.0, f64::INFINITY).max(sum_violation()),
            ProjectionOp::CappedSimplex { lo, hi } => {
                bound_violation(f64::from(lo), f64::from(hi)).max(sum_violation())
            }
            ProjectionOp::L2Ball { radius } => {
                (hm_tensor::vecops::norm2(x) - f64::from(radius)).max(0.0)
            }
            ProjectionOp::Box { lo, hi } => bound_violation(f64::from(lo), f64::from(hi)),
        }
    }
}

impl Projection for ProjectionOp {
    fn project(&self, x: &mut [f32]) {
        match *self {
            ProjectionOp::Unconstrained => {}
            ProjectionOp::Simplex => project_simplex(x),
            ProjectionOp::CappedSimplex { lo, hi } => project_capped_simplex(x, lo, hi),
            ProjectionOp::L2Ball { radius } => project_l2_ball(x, radius),
            ProjectionOp::Box { lo, hi } => {
                for v in x.iter_mut() {
                    *v = v.clamp(lo, hi);
                }
            }
        }
    }

    fn contains(&self, x: &[f32], tol: f32) -> bool {
        match *self {
            ProjectionOp::Unconstrained => true,
            ProjectionOp::Simplex => {
                let sum: f64 = x.iter().map(|&v| f64::from(v)).sum();
                x.iter().all(|&v| v >= -tol) && (sum - 1.0).abs() <= f64::from(tol)
            }
            ProjectionOp::CappedSimplex { lo, hi } => {
                let sum: f64 = x.iter().map(|&v| f64::from(v)).sum();
                x.iter().all(|&v| v >= lo - tol && v <= hi + tol)
                    && (sum - 1.0).abs() <= f64::from(tol)
            }
            ProjectionOp::L2Ball { radius } => {
                hm_tensor::vecops::norm2(x) <= f64::from(radius) + f64::from(tol)
            }
            ProjectionOp::Box { lo, hi } => x.iter().all(|&v| v >= lo - tol && v <= hi + tol),
        }
    }
}

/// Project onto the probability simplex (Duchi et al. 2008).
///
/// ```
/// use hm_optim::projection::project_simplex;
///
/// let mut p = vec![0.4, 0.4, 0.4]; // off the simplex after an ascent step
/// project_simplex(&mut p);
/// let sum: f32 = p.iter().sum();
/// assert!((sum - 1.0).abs() < 1e-5);
/// assert!(p.iter().all(|&x| x >= 0.0));
/// ```
///
/// # Panics
/// Panics on an empty slice or non-finite input.
pub fn project_simplex(x: &mut [f32]) {
    assert!(!x.is_empty(), "cannot project an empty vector");
    assert!(
        x.iter().all(|v| v.is_finite()),
        "non-finite input to simplex projection"
    );
    let n = x.len();
    // Sort a copy in descending order (f64 for the running sums).
    let mut u: Vec<f64> = x.iter().map(|&v| f64::from(v)).collect();
    u.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
    let mut css = 0.0_f64; // cumulative sum of the sorted values
    let mut theta = 0.0_f64;
    let mut rho = 0;
    for (j, &uj) in u.iter().enumerate() {
        css += uj;
        let t = (css - 1.0) / (j + 1) as f64;
        if uj - t > 0.0 {
            rho = j + 1;
            theta = t;
        }
    }
    debug_assert!(rho >= 1, "simplex projection found no support");
    let _ = rho;
    for v in x.iter_mut() {
        *v = (f64::from(*v) - theta).max(0.0) as f32;
    }
    // Renormalise the residual f32 rounding error.
    let sum: f64 = x.iter().map(|&v| f64::from(v)).sum();
    if sum > 0.0 {
        let inv = (1.0 / sum) as f32;
        for v in x.iter_mut() {
            *v *= inv;
        }
    } else {
        // Numerically possible only for pathological inputs: fall back to
        // the barycentre.
        let c = 1.0 / n as f32;
        x.iter_mut().for_each(|v| *v = c);
    }
}

/// Project onto the capped simplex `{lo ≤ x_i ≤ hi, Σ x = 1}` by bisection
/// on the shift `θ` of `x_i ← clamp(x_i − θ, lo, hi)`.
///
/// # Panics
/// Panics when the set is empty (`n·lo > 1` or `n·hi < 1`) or bounds are
/// inverted.
pub fn project_capped_simplex(x: &mut [f32], lo: f32, hi: f32) {
    assert!(!x.is_empty(), "cannot project an empty vector");
    assert!(
        x.iter().all(|v| v.is_finite()),
        "non-finite input to capped-simplex projection"
    );
    assert!(lo <= hi, "inverted bounds");
    let n = x.len() as f64;
    assert!(
        n * f64::from(lo) <= 1.0 + 1e-9 && n * f64::from(hi) >= 1.0 - 1e-9,
        "capped simplex is empty: n={n}, lo={lo}, hi={hi}"
    );
    let sum_at = |theta: f64| -> f64 {
        x.iter()
            .map(|&v| (f64::from(v) - theta).clamp(f64::from(lo), f64::from(hi)))
            .sum()
    };
    // Bracket θ: sum_at is non-increasing in θ.
    let max_x = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let min_x = x.iter().copied().fold(f32::INFINITY, f32::min);
    let mut a = f64::from(min_x) - f64::from(hi) - 1.0;
    let mut b = f64::from(max_x) - f64::from(lo) + 1.0;
    for _ in 0..200 {
        let mid = 0.5 * (a + b);
        if sum_at(mid) > 1.0 {
            a = mid;
        } else {
            b = mid;
        }
    }
    let theta = 0.5 * (a + b);
    for v in x.iter_mut() {
        *v = (f64::from(*v) - theta).clamp(f64::from(lo), f64::from(hi)) as f32;
    }
}

/// Project onto the origin-centred L2 ball of the given radius.
///
/// # Panics
/// Panics if `radius <= 0`.
pub fn project_l2_ball(x: &mut [f32], radius: f32) {
    assert!(radius > 0.0, "ball radius must be positive");
    let norm = hm_tensor::vecops::norm2(x);
    if norm > f64::from(radius) {
        let scale = (f64::from(radius) / norm) as f32;
        for v in x.iter_mut() {
            *v *= scale;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Brute-force projection onto the simplex by dense grid search over
    /// 2-d simplices (oracle for the optimality property test).
    fn grid_best_2d(x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), 2);
        let mut best = vec![0.5, 0.5];
        let mut best_d = f64::MAX;
        for i in 0..=10_000 {
            let a = i as f64 / 10_000.0;
            let cand = [a as f32, (1.0 - a) as f32];
            let d = hm_tensor::vecops::dist2_sq(&cand, x);
            if d < best_d {
                best_d = d;
                best = cand.to_vec();
            }
        }
        best
    }

    #[test]
    fn simplex_already_feasible_is_fixed() {
        let mut x = vec![0.2, 0.3, 0.5];
        let orig = x.clone();
        project_simplex(&mut x);
        for (a, b) in x.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn simplex_projects_uniform_shift() {
        // x = p + c·1 projects back to p when p is interior.
        let mut x = vec![0.2 + 5.0, 0.3 + 5.0, 0.5 + 5.0];
        project_simplex(&mut x);
        let expect = [0.2, 0.3, 0.5];
        for (a, b) in x.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-5, "{x:?}");
        }
    }

    #[test]
    fn simplex_negative_goes_to_vertex() {
        let mut x = vec![-10.0, 0.0, 10.0];
        project_simplex(&mut x);
        assert!((x[2] - 1.0).abs() < 1e-6, "{x:?}");
        assert!(x[0].abs() < 1e-6 && x[1].abs() < 1e-6);
    }

    #[test]
    fn simplex_matches_grid_oracle_2d() {
        for &pt in &[[1.5_f32, 0.3], [-0.4, 0.2], [0.9, 0.9], [2.0, -3.0]] {
            let mut x = pt.to_vec();
            project_simplex(&mut x);
            let oracle = grid_best_2d(&pt);
            for (a, b) in x.iter().zip(&oracle) {
                assert!(
                    (a - b).abs() < 2e-4,
                    "input {pt:?}: got {x:?}, oracle {oracle:?}"
                );
            }
        }
    }

    #[test]
    fn capped_simplex_respects_caps() {
        let mut x = vec![10.0, 0.0, 0.0, 0.0];
        project_capped_simplex(&mut x, 0.0, 0.4);
        assert!(x[0] <= 0.4 + 1e-5);
        let sum: f32 = x.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4, "{x:?}");
    }

    #[test]
    fn capped_simplex_with_unit_cap_equals_simplex() {
        let pts = [[1.5_f32, -0.2, 0.4], [0.0, 0.0, 0.0], [5.0, 4.0, 3.0]];
        for pt in pts {
            let mut a = pt.to_vec();
            let mut b = pt.to_vec();
            project_simplex(&mut a);
            project_capped_simplex(&mut b, 0.0, 1.0);
            for (u, v) in a.iter().zip(&b) {
                assert!((u - v).abs() < 1e-4, "input {pt:?}: {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn capped_simplex_infeasible_panics() {
        let mut x = vec![0.5, 0.5];
        project_capped_simplex(&mut x, 0.0, 0.3); // 2·0.3 < 1
    }

    #[test]
    fn l2_ball_scales_only_outside() {
        let mut inside = vec![0.3, 0.4];
        project_l2_ball(&mut inside, 1.0);
        assert_eq!(inside, vec![0.3, 0.4]);
        let mut outside = vec![3.0, 4.0];
        project_l2_ball(&mut outside, 1.0);
        assert!((hm_tensor::vecops::norm2(&outside) - 1.0).abs() < 1e-6);
        // Direction preserved.
        assert!((outside[1] / outside[0] - 4.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn box_clamps() {
        let op = ProjectionOp::Box { lo: -1.0, hi: 1.0 };
        let mut x = vec![-3.0, 0.5, 2.0];
        op.project(&mut x);
        assert_eq!(x, vec![-1.0, 0.5, 1.0]);
        assert!(op.contains(&x, 1e-6));
    }

    #[test]
    fn feasibility_violation_is_zero_iff_contained() {
        let simplex = ProjectionOp::Simplex;
        assert_eq!(simplex.feasibility_violation(&[0.5, 0.5]), 0.0);
        // Sum off by 0.5 → violation 0.5.
        assert!((simplex.feasibility_violation(&[0.5, 1.0]) - 0.5).abs() < 1e-9);
        // Negative coordinate dominates when larger than the sum gap.
        assert!((simplex.feasibility_violation(&[-0.8, 1.8]) - 0.8).abs() < 1e-6);

        let capped = ProjectionOp::CappedSimplex { lo: 0.0, hi: 0.6 };
        // 0.4 + 0.6 is only ~1 up to f32 rounding, so allow float slack.
        assert!(capped.feasibility_violation(&[0.4, 0.6]) < 1e-6);
        assert!((capped.feasibility_violation(&[0.9, 0.1]) - 0.3).abs() < 1e-6);

        let ball = ProjectionOp::L2Ball { radius: 1.0 };
        assert!(ball.feasibility_violation(&[0.6, 0.8]) < 1e-6);
        assert!((ball.feasibility_violation(&[3.0, 4.0]) - 4.0).abs() < 1e-9);

        assert_eq!(
            ProjectionOp::Unconstrained.feasibility_violation(&[1e9, -1e9]),
            0.0
        );
        let boxed = ProjectionOp::Box { lo: -1.0, hi: 1.0 };
        assert!((boxed.feasibility_violation(&[2.5, 0.0]) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn projection_drives_violation_to_zero() {
        for op in [
            ProjectionOp::Simplex,
            ProjectionOp::CappedSimplex { lo: 0.1, hi: 0.8 },
            ProjectionOp::L2Ball { radius: 0.5 },
            ProjectionOp::Box { lo: -0.2, hi: 0.2 },
        ] {
            let mut x = vec![3.0_f32, -2.0, 0.7];
            assert!(op.feasibility_violation(&x) > 0.0, "{op:?}");
            op.project(&mut x);
            assert!(op.feasibility_violation(&x) < 1e-4, "{op:?}: {x:?}");
        }
    }

    #[test]
    fn unconstrained_is_identity() {
        let op = ProjectionOp::Unconstrained;
        let mut x = vec![1e9, -1e9];
        op.project(&mut x);
        assert_eq!(x, vec![1e9, -1e9]);
        assert!(op.contains(&x, 0.0));
    }

    proptest! {
        #[test]
        fn prop_simplex_output_feasible(xs in prop::collection::vec(-10.0f32..10.0, 1..20)) {
            let mut x = xs.clone();
            project_simplex(&mut x);
            let op = ProjectionOp::Simplex;
            prop_assert!(op.contains(&x, 1e-4), "infeasible output {:?}", x);
        }

        #[test]
        fn prop_simplex_idempotent(xs in prop::collection::vec(-10.0f32..10.0, 1..20)) {
            let mut once = xs.clone();
            project_simplex(&mut once);
            let mut twice = once.clone();
            project_simplex(&mut twice);
            for (a, b) in once.iter().zip(&twice) {
                prop_assert!((a - b).abs() < 1e-5);
            }
        }

        #[test]
        fn prop_simplex_is_closest_feasible_point(
            xs in prop::collection::vec(-5.0f32..5.0, 2..8),
            probe_seed in 0u64..100,
        ) {
            // Optimality via the variational inequality: for the projection
            // π of x and any feasible z, ⟨x − π, z − π⟩ ≤ 0.
            let mut pi = xs.clone();
            project_simplex(&mut pi);
            // Random feasible probe point.
            let mut s = probe_seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
            let mut z: Vec<f32> = xs.iter().map(|_| {
                s ^= s << 13; s ^= s >> 7; s ^= s << 17;
                (s >> 40) as f32 / (1u64 << 24) as f32
            }).collect();
            let tot: f32 = z.iter().sum();
            z.iter_mut().for_each(|v| *v /= tot.max(1e-6));
            let inner: f64 = xs.iter().zip(&pi).zip(&z)
                .map(|((&x, &p), &zz)| (f64::from(x) - f64::from(p)) * (f64::from(zz) - f64::from(p)))
                .sum();
            prop_assert!(inner <= 1e-3, "VI violated: {inner}");
        }

        #[test]
        fn prop_capped_simplex_feasible(
            xs in prop::collection::vec(-5.0f32..5.0, 2..12),
            hi_scale in 1.0f32..4.0,
        ) {
            let n = xs.len() as f32;
            let hi = hi_scale / n; // guarantees n·hi ≥ 1
            let mut x = xs.clone();
            project_capped_simplex(&mut x, 0.0, hi);
            let sum: f64 = x.iter().map(|&v| f64::from(v)).sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "sum {sum}");
            prop_assert!(x.iter().all(|&v| v >= -1e-5 && v <= hi + 1e-5));
        }

        #[test]
        fn prop_l2_ball_feasible(xs in prop::collection::vec(-10.0f32..10.0, 1..20), r in 0.1f32..5.0) {
            let mut x = xs.clone();
            project_l2_ball(&mut x, r);
            prop_assert!(hm_tensor::vecops::norm2(&x) <= f64::from(r) + 1e-4);
        }
    }
}
