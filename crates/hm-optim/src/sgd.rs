//! The projected-SGD step of eq. (4):
//! `w ← Π_W(w − η ∇f(w; ξ))`.

use crate::projection::{Projection, ProjectionOp};
use hm_tensor::vecops;

/// Client-side optimizer hyper-parameters beyond plain SGD. The paper's
/// algorithms use plain SGD (the defaults); these knobs are standard FL
/// practice and are exposed for library users building on the substrate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgdHyper {
    /// Learning rate.
    pub lr: f32,
    /// Heavy-ball momentum coefficient in `[0, 1)` (`0` = plain SGD).
    pub momentum: f32,
    /// Decoupled weight decay per step (`0` = none).
    pub weight_decay: f32,
    /// Clip the gradient to this L2 norm before stepping (`None` = off).
    pub clip_norm: Option<f32>,
}

impl SgdHyper {
    /// Plain SGD at the given rate — what eq. (4) uses.
    pub fn plain(lr: f32) -> Self {
        Self {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            clip_norm: None,
        }
    }
}

/// Momentum-SGD state: the velocity buffer, matched to one parameter
/// vector.
#[derive(Debug, Clone)]
pub struct SgdState {
    velocity: Vec<f32>,
}

impl SgdState {
    /// Zero-velocity state for a `d`-dimensional model.
    pub fn new(d: usize) -> Self {
        Self {
            velocity: vec![0.0; d],
        }
    }

    /// One projected step with the full hyper-parameter set:
    /// `v ← μ v + g_clipped`, `w ← Π((1 − λ·lr) w − lr·v)`.
    ///
    /// # Panics
    /// Panics on length mismatch or non-finite rates.
    pub fn step(
        &mut self,
        params: &mut [f32],
        grad: &[f32],
        hyper: &SgdHyper,
        proj: &ProjectionOp,
    ) {
        assert_eq!(params.len(), grad.len(), "param/grad length mismatch");
        assert_eq!(params.len(), self.velocity.len(), "state length mismatch");
        assert!(hyper.lr.is_finite() && hyper.momentum.is_finite());
        assert!(
            (0.0..1.0).contains(&hyper.momentum),
            "momentum out of [0,1)"
        );
        // Clip (scaling, not truncation, so the direction is preserved).
        let scale = match hyper.clip_norm {
            Some(c) => {
                assert!(c > 0.0, "clip norm must be positive");
                let n = vecops::norm2(grad);
                if n > f64::from(c) {
                    (f64::from(c) / n) as f32
                } else {
                    1.0
                }
            }
            None => 1.0,
        };
        for (v, &g) in self.velocity.iter_mut().zip(grad) {
            *v = hyper.momentum * *v + scale * g;
        }
        if hyper.weight_decay > 0.0 {
            let shrink = 1.0 - hyper.weight_decay * hyper.lr;
            for p in params.iter_mut() {
                *p *= shrink;
            }
        }
        vecops::axpy(-hyper.lr, &self.velocity, params);
        proj.project(params);
    }
}

/// One projected gradient step in place. `grad` is the stochastic gradient
/// at the current `params`.
///
/// The step and the projection are fused into a single sweep over the
/// parameter vector wherever the constraint set allows it (unconstrained,
/// box, L2 ball); the simplex projections need the whole post-step vector
/// before any coordinate can be resolved, so they keep the two-phase path.
/// Each fused path performs the exact per-element operations of
/// `axpy` + `project`, so results are bit-identical to the two-phase code.
///
/// # Panics
/// Panics if lengths differ or `lr` is not finite.
pub fn projected_sgd_step(params: &mut [f32], grad: &[f32], lr: f32, proj: &ProjectionOp) {
    assert!(lr.is_finite(), "non-finite learning rate");
    assert_eq!(params.len(), grad.len(), "param/grad length mismatch");
    match *proj {
        ProjectionOp::Unconstrained => vecops::axpy(-lr, grad, params),
        ProjectionOp::Box { lo, hi } => {
            for (p, &g) in params.iter_mut().zip(grad) {
                *p = (*p + -lr * g).clamp(lo, hi);
            }
        }
        ProjectionOp::L2Ball { radius } => {
            assert!(radius > 0.0, "ball radius must be positive");
            // Accumulate the post-step squared norm during the update sweep
            // (same sequential f64 order as `norm2`); the rescale when the
            // iterate leaves the ball is the only second pass.
            let mut sq = 0.0_f64;
            for (p, &g) in params.iter_mut().zip(grad) {
                *p += -lr * g;
                sq += f64::from(*p) * f64::from(*p);
            }
            let norm = sq.sqrt();
            if norm > f64::from(radius) {
                let scale = (f64::from(radius) / norm) as f32;
                for p in params.iter_mut() {
                    *p *= scale;
                }
            }
        }
        ProjectionOp::Simplex | ProjectionOp::CappedSimplex { .. } => {
            vecops::axpy(-lr, grad, params);
            proj.project(params);
        }
    }
}

/// One projected gradient-*ascent* step in place (the edge-weight update of
/// eq. (7) moves `p` up the gradient of `F(w, ·)`).
pub fn projected_ascent_step(params: &mut [f32], grad: &[f32], lr: f32, proj: &ProjectionOp) {
    assert!(lr.is_finite(), "non-finite learning rate");
    vecops::axpy(lr, grad, params);
    proj.project(params);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_hyper_matches_projected_sgd_step() {
        let hyper = SgdHyper::plain(0.1);
        let grad = [1.0_f32, -2.0];
        let mut a = vec![0.5_f32, 0.5];
        let mut b = a.clone();
        let mut st = SgdState::new(2);
        st.step(&mut a, &grad, &hyper, &ProjectionOp::Unconstrained);
        projected_sgd_step(&mut b, &grad, 0.1, &ProjectionOp::Unconstrained);
        assert_eq!(a, b);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let hyper = SgdHyper {
            momentum: 0.9,
            ..SgdHyper::plain(0.1)
        };
        let grad = [1.0_f32];
        let mut w = vec![0.0_f32];
        let mut st = SgdState::new(1);
        st.step(&mut w, &grad, &hyper, &ProjectionOp::Unconstrained);
        assert!((w[0] + 0.1).abs() < 1e-6); // v = 1
        st.step(&mut w, &grad, &hyper, &ProjectionOp::Unconstrained);
        // v = 0.9 + 1 = 1.9 → w = -0.1 - 0.19
        assert!((w[0] + 0.29).abs() < 1e-6, "{w:?}");
    }

    #[test]
    fn clipping_preserves_direction() {
        let hyper = SgdHyper {
            clip_norm: Some(1.0),
            ..SgdHyper::plain(1.0)
        };
        let grad = [3.0_f32, 4.0]; // norm 5 → scaled to 1
        let mut w = vec![0.0_f32, 0.0];
        let mut st = SgdState::new(2);
        st.step(&mut w, &grad, &hyper, &ProjectionOp::Unconstrained);
        assert!(
            (w[0] + 0.6).abs() < 1e-6 && (w[1] + 0.8).abs() < 1e-6,
            "{w:?}"
        );
    }

    #[test]
    fn small_gradient_not_clipped() {
        let hyper = SgdHyper {
            clip_norm: Some(10.0),
            ..SgdHyper::plain(1.0)
        };
        let grad = [0.3_f32];
        let mut w = vec![0.0_f32];
        let mut st = SgdState::new(1);
        st.step(&mut w, &grad, &hyper, &ProjectionOp::Unconstrained);
        assert!((w[0] + 0.3).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_shrinks_params() {
        let hyper = SgdHyper {
            weight_decay: 0.5,
            ..SgdHyper::plain(0.1)
        };
        let grad = [0.0_f32];
        let mut w = vec![1.0_f32];
        let mut st = SgdState::new(1);
        st.step(&mut w, &grad, &hyper, &ProjectionOp::Unconstrained);
        assert!((w[0] - 0.95).abs() < 1e-6); // (1 - 0.5·0.1)·1
    }

    #[test]
    #[should_panic(expected = "momentum out of [0,1)")]
    fn bad_momentum_panics() {
        let hyper = SgdHyper {
            momentum: 1.0,
            ..SgdHyper::plain(0.1)
        };
        let mut st = SgdState::new(1);
        st.step(&mut [0.0], &[0.0], &hyper, &ProjectionOp::Unconstrained);
    }

    #[test]
    fn descent_moves_against_gradient() {
        let mut p = vec![1.0, 1.0];
        projected_sgd_step(&mut p, &[1.0, -2.0], 0.1, &ProjectionOp::Unconstrained);
        assert_eq!(p, vec![0.9, 1.2]);
    }

    #[test]
    fn ascent_moves_with_gradient() {
        let mut p = vec![0.5, 0.5];
        projected_ascent_step(&mut p, &[0.1, -0.1], 1.0, &ProjectionOp::Unconstrained);
        assert!((p[0] - 0.6).abs() < 1e-6 && (p[1] - 0.4).abs() < 1e-6);
    }

    #[test]
    fn step_projects_back_to_simplex() {
        let mut p = vec![0.5, 0.5];
        projected_ascent_step(&mut p, &[10.0, 0.0], 1.0, &ProjectionOp::Simplex);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(p[0] > 0.9, "{p:?}");
    }

    #[test]
    fn step_stays_in_ball() {
        let mut p = vec![0.0, 0.9];
        projected_sgd_step(
            &mut p,
            &[0.0, -10.0],
            1.0,
            &ProjectionOp::L2Ball { radius: 1.0 },
        );
        assert!(hm_tensor::vecops::norm2(&p) <= 1.0 + 1e-5);
    }

    #[test]
    fn fused_step_matches_two_phase_reference() {
        // The fused paths must be bit-identical to axpy-then-project.
        let grad: Vec<f32> = (0..37).map(|i| ((i * 7 % 13) as f32 - 6.0) * 0.3).collect();
        let w0: Vec<f32> = (0..37).map(|i| ((i * 5 % 11) as f32 - 5.0) * 0.2).collect();
        let projs = [
            ProjectionOp::Unconstrained,
            ProjectionOp::Box { lo: -0.4, hi: 0.4 },
            ProjectionOp::L2Ball { radius: 0.7 },
            ProjectionOp::L2Ball { radius: 1e6 }, // stays inside: no rescale
            ProjectionOp::Simplex,
            ProjectionOp::CappedSimplex { lo: 0.0, hi: 0.5 },
        ];
        for proj in &projs {
            let mut fused = w0.clone();
            projected_sgd_step(&mut fused, &grad, 0.17, proj);
            let mut reference = w0.clone();
            vecops::axpy(-0.17, &grad, &mut reference);
            proj.project(&mut reference);
            assert_eq!(fused, reference, "mismatch under {proj:?}");
        }
    }

    #[test]
    fn quadratic_converges_under_projection() {
        // Minimise ||w − c||² over the unit ball with c outside the ball:
        // the solution is c/||c||.
        let c = [3.0_f32, 4.0];
        let mut w = vec![0.0_f32, 0.0];
        let proj = ProjectionOp::L2Ball { radius: 1.0 };
        for _ in 0..200 {
            let g: Vec<f32> = w.iter().zip(&c).map(|(wi, ci)| 2.0 * (wi - ci)).collect();
            projected_sgd_step(&mut w, &g, 0.05, &proj);
        }
        assert!(
            (w[0] - 0.6).abs() < 1e-3 && (w[1] - 0.8).abs() < 1e-3,
            "{w:?}"
        );
    }
}
