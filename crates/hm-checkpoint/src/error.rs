//! Typed failure modes of snapshot loading and writing.
//!
//! Every way a checkpoint file can be unusable maps to a distinct variant,
//! so callers (the CLI, the resume tests) can distinguish "file damaged in
//! transit" from "you pointed a resumed run at the wrong snapshot" without
//! string matching. Loading never panics and never returns a partially
//! populated snapshot: any defect surfaces here.

use std::fmt;

/// Why a checkpoint could not be written, read, or used.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying filesystem failure (open, read, write, rename).
    Io(std::io::Error),
    /// The file does not start with the `HMCK` magic — not a checkpoint.
    BadMagic,
    /// The format version is newer (or older) than this build understands.
    UnsupportedVersion(u32),
    /// The CRC32 over the header and payload does not match the stored
    /// checksum: the file was corrupted or tampered with.
    CrcMismatch {
        /// Checksum stored in the file.
        stored: u32,
        /// Checksum computed over the file contents.
        computed: u32,
    },
    /// The file ends before the declared payload does.
    Truncated,
    /// The payload passed the checksum but decoded inconsistently (e.g.
    /// trailing bytes, impossible lengths). Should not happen for files we
    /// wrote; guards against hand-crafted input.
    Malformed(String),
    /// The snapshot is valid but belongs to a different run (wrong
    /// algorithm, seed, round budget, or RNG stream fingerprint).
    Mismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::BadMagic => {
                write!(f, "not a checkpoint file (missing HMCK magic)")
            }
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint format version {v}")
            }
            CheckpointError::CrcMismatch { stored, computed } => write!(
                f,
                "checkpoint checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            CheckpointError::Truncated => write!(f, "checkpoint file is truncated"),
            CheckpointError::Malformed(why) => write!(f, "malformed checkpoint payload: {why}"),
            CheckpointError::Mismatch(why) => {
                write!(f, "checkpoint does not match this run: {why}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}
