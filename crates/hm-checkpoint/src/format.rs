//! Little-endian binary primitives shared by the snapshot codec.
//!
//! The writer/reader pair is deliberately dumb: fixed-width scalars,
//! length-prefixed strings and vectors, nothing self-describing. Schema
//! evolution happens through the file-level format version, not through
//! per-field tags. `ByteReader` returns typed errors instead of panicking,
//! so a corrupted payload can never crash a resuming process.
//!
//! The reader and writer are public because `hm-core` serialises its own
//! types (training history, eval reports) into a snapshot's opaque named
//! sections using the same primitives.

use crate::error::CheckpointError;

/// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) over a byte slice.
///
/// Hand-rolled table-based implementation — the workspace has no
/// checksum dependency, and 20 lines beat a new crate.
pub fn crc32(bytes: &[u8]) -> u32 {
    const fn table() -> [u32; 256] {
        let mut t = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    }
    const TABLE: [u32; 256] = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// Append-only little-endian byte writer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// New empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume the writer, returning the bytes written.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f32` as its IEEE-754 bit pattern.
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Append an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append a length-prefixed raw byte blob.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_u64(b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    /// Append a length-prefixed `f32` vector.
    pub fn put_vec_f32(&mut self, v: &[f32]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_f32(x);
        }
    }

    /// Append a length-prefixed `f64` vector.
    pub fn put_vec_f64(&mut self, v: &[f64]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_f64(x);
        }
    }
}

/// Cap on any single length prefix: decoded lengths above this are treated
/// as malformed rather than attempted (guards allocation on corrupt input
/// that happens to pass earlier checks, e.g. hand-crafted files).
const MAX_LEN: u64 = 1 << 32;

/// Cursor-based little-endian reader over a byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes left unread.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.remaining() < n {
            return Err(CheckpointError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn checked_len(&self, raw: u64, elem_size: usize) -> Result<usize, CheckpointError> {
        if raw > MAX_LEN || (raw as usize).saturating_mul(elem_size) > self.remaining() {
            return Err(CheckpointError::Malformed(format!(
                "length prefix {raw} exceeds remaining payload"
            )));
        }
        Ok(raw as usize)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CheckpointError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CheckpointError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Read an `f32` bit pattern.
    pub fn get_f32(&mut self) -> Result<f32, CheckpointError> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// Read an `f64` bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, CheckpointError> {
        let len = self.get_u64()?;
        let len = self.checked_len(len, 1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CheckpointError::Malformed("string is not UTF-8".into()))
    }

    /// Read a length-prefixed raw byte blob.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, CheckpointError> {
        let len = self.get_u64()?;
        let len = self.checked_len(len, 1)?;
        Ok(self.take(len)?.to_vec())
    }

    /// Read a length-prefixed `f32` vector.
    pub fn get_vec_f32(&mut self) -> Result<Vec<f32>, CheckpointError> {
        let len = self.get_u64()?;
        let len = self.checked_len(len, 4)?;
        (0..len).map(|_| self.get_f32()).collect()
    }

    /// Read a length-prefixed `f64` vector.
    pub fn get_vec_f64(&mut self) -> Result<Vec<f64>, CheckpointError> {
        let len = self.get_u64()?;
        let len = self.checked_len(len, 8)?;
        (0..len).map(|_| self.get_f64()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_scalars_and_vectors() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_f32(-1.5);
        w.put_f64(std::f64::consts::PI);
        w.put_str("HierMinimax");
        w.put_bytes(&[1, 2, 3]);
        w.put_vec_f32(&[0.0, -0.0, f32::MIN_POSITIVE]);
        w.put_vec_f64(&[1e-300, 2.0]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_f32().unwrap(), -1.5);
        assert_eq!(r.get_f64().unwrap(), std::f64::consts::PI);
        assert_eq!(r.get_str().unwrap(), "HierMinimax");
        assert_eq!(r.get_bytes().unwrap(), vec![1, 2, 3]);
        let v = r.get_vec_f32().unwrap();
        assert_eq!(v.len(), 3);
        assert_eq!(v[1].to_bits(), (-0.0_f32).to_bits(), "bit-exact floats");
        assert_eq!(r.get_vec_f64().unwrap(), vec![1e-300, 2.0]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_reads_are_typed_errors() {
        let mut w = ByteWriter::new();
        w.put_u64(42);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..5]);
        assert!(matches!(r.get_u64(), Err(CheckpointError::Truncated)));
    }

    #[test]
    fn oversized_length_prefix_is_malformed() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX); // absurd vector length
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            r.get_vec_f32(),
            Err(CheckpointError::Malformed(_))
        ));
    }
}
