//! Crash-consistent checkpoint/resume for hierarchical minimax training.
//!
//! A checkpoint is a versioned, checksummed binary snapshot of everything
//! a cloud-round boundary owns: model weights, dual weights, the
//! iterate-average accumulators, communication and fault counters, the
//! telemetry sequence position, and fingerprints of the keyed RNG streams
//! the next round will open. Because all randomness in this workspace is
//! a pure function of `(seed, purpose, round, entity)`, restoring that
//! state and re-entering the loop at `next_round` reproduces the
//! uninterrupted run bit for bit.
//!
//! What a snapshot deliberately does **not** capture:
//!
//! - the protocol trace and the telemetry sink — both are external event
//!   streams; a resumed run re-emits only rounds `next_round..`, and
//!   consumers splice the pre-crash prefix with the post-resume suffix
//!   (the conformance checker in `hm-testkit` validates such splices);
//! - wall-clock timings — nondeterministic by nature;
//! - the dataset — regenerated deterministically from the seed.
//!
//! Files are written atomically (tmp + fsync + rename) so a crash during
//! checkpointing leaves the previous snapshot intact, and loading
//! validates magic, CRC32, and format version before touching the
//! payload — corruption yields a typed [`CheckpointError`], never a
//! panic or a silent partial load.

mod error;
pub mod format;
mod io;
mod snapshot;

pub use error::CheckpointError;
pub use io::{
    from_file_bytes, read_snapshot, to_file_bytes, write_snapshot, FORMAT_VERSION, MAGIC,
};
pub use snapshot::{rng_cursors_for, RngCursor, Snapshot, FINGERPRINT_PURPOSES};

use std::path::{Path, PathBuf};

/// How often a run writes checkpoints: every `every` cloud rounds
/// (`every == 0` disables writing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Cadence {
    /// Write a snapshot after every `every`-th cloud round; 0 = never.
    pub every: usize,
}

impl Cadence {
    /// Cadence writing every `every` rounds.
    pub fn every(every: usize) -> Self {
        Self { every }
    }

    /// Whether a snapshot is due after round `round` (0-based) completes.
    pub fn due(&self, round: usize) -> bool {
        self.every > 0 && (round + 1).is_multiple_of(self.every)
    }
}

/// Canonical file name for a snapshot taken after `completed` rounds of
/// algorithm `algorithm` (lower-cased, non-alphanumerics mapped to `-`).
pub fn snapshot_filename(algorithm: &str, completed: usize) -> String {
    let slug: String = algorithm
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect();
    format!("{slug}-round-{completed:06}.hmck")
}

/// Canonical path of a snapshot inside checkpoint directory `dir`.
pub fn snapshot_path(dir: &Path, algorithm: &str, completed: usize) -> PathBuf {
    dir.join(snapshot_filename(algorithm, completed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cadence_due_schedule() {
        let c = Cadence::every(3);
        let due: Vec<usize> = (0..10).filter(|&k| c.due(k)).collect();
        assert_eq!(due, vec![2, 5, 8]);
        assert!(!Cadence::default().due(0));
        assert!(!Cadence::every(0).due(5));
        let every_round = Cadence::every(1);
        assert!((0..5).all(|k| every_round.due(k)));
    }

    #[test]
    fn filename_slugging() {
        assert_eq!(
            snapshot_filename("HierMinimax", 12),
            "hierminimax-round-000012.hmck"
        );
        assert_eq!(
            snapshot_filename("Stochastic-AFL", 3),
            "stochastic-afl-round-000003.hmck"
        );
        assert_eq!(
            snapshot_filename("q-FedAvg", 100),
            "q-fedavg-round-000100.hmck"
        );
    }
}
