//! The snapshot payload: everything a cloud-round boundary owns.
//!
//! Because every random draw in the workspace is a pure function of
//! `(master seed, purpose, round, entity)` and no RNG object survives a
//! round boundary, resuming does not require restoring generator state —
//! replaying from the stored round index reproduces every stream exactly.
//! The snapshot therefore stores RNG *cursors* as fingerprints: the
//! initial state of each keyed stream the next round will open. On resume
//! they are recomputed from `(seed, next_round)` and compared, catching a
//! snapshot paired with the wrong seed or round before any work runs.

use crate::error::CheckpointError;
use crate::format::{ByteReader, ByteWriter};
use hm_data::rng::{Purpose, StreamKey, StreamRng};
use hm_simnet::{CommStats, FaultStats};

/// Fingerprint of one keyed RNG stream: the xoshiro256** state the stream
/// starts from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngCursor {
    /// Index into [`FINGERPRINT_PURPOSES`].
    pub purpose_tag: u8,
    /// The stream's initial state, from [`StreamRng::cursor`].
    pub cursor: [u64; 4],
}

/// The per-round streams fingerprinted in every snapshot: the two sampling
/// streams and the checkpoint-index stream of the training loop, plus the
/// four fault-injection decision streams.
pub const FINGERPRINT_PURPOSES: [Purpose; 7] = [
    Purpose::EdgeSampling,
    Purpose::Checkpoint,
    Purpose::LossEstSampling,
    Purpose::Dropout,
    Purpose::EdgeOutage,
    Purpose::MsgLoss,
    Purpose::Straggler,
];

/// Compute the stream fingerprints a run with this `seed` will open at
/// round `next_round` (entity 0 of each purpose).
pub fn rng_cursors_for(seed: u64, next_round: u64) -> Vec<RngCursor> {
    FINGERPRINT_PURPOSES
        .iter()
        .enumerate()
        .map(|(i, &purpose)| RngCursor {
            purpose_tag: i as u8,
            cursor: StreamRng::for_key(StreamKey::new(seed, purpose, next_round, 0)).cursor(),
        })
        .collect()
}

/// A crash-consistent snapshot of a training run at a cloud-round
/// boundary (after round `next_round - 1` completed, before `next_round`
/// starts).
///
/// The flat fair baselines (DRFA, Stochastic-AFL) store their per-client
/// weight vector `q` in [`Snapshot::p`]; algorithm-specific scalars that
/// do not fit the common shape (e.g. over-selection's simulated clock)
/// ride in [`Snapshot::extras`] as named opaque sections encoded with the
/// [`crate::format`] primitives.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// `Algorithm::name()` of the run that wrote the snapshot.
    pub algorithm: String,
    /// Master seed of the run.
    pub seed: u64,
    /// Total rounds the run was configured for.
    pub total_rounds: u64,
    /// First round the resumed run executes (= rounds completed).
    pub next_round: u64,
    /// Global model `w^(next_round)`.
    pub w: Vec<f32>,
    /// Dual weights at the boundary (per edge/group, or per client for the
    /// flat fair baselines).
    pub p: Vec<f32>,
    /// Iterate-average accumulator for `ŵ`: running f64 sum.
    pub avg_w_sum: Vec<f64>,
    /// Number of iterates folded into `avg_w_sum`.
    pub avg_w_count: u64,
    /// Iterate-average accumulator for `p̂`: running f64 sum.
    pub avg_p_sum: Vec<f64>,
    /// Number of iterates folded into `avg_p_sum`.
    pub avg_p_count: u64,
    /// Cumulative communication totals at the boundary.
    pub comm: CommStats,
    /// Cumulative injected-fault bookkeeping at the boundary.
    pub faults: FaultStats,
    /// Telemetry events emitted so far (including the `checkpoint` event
    /// that announced this snapshot). Zero when the run is not traced.
    pub telemetry_seq: u64,
    /// Stream fingerprints for `next_round` (see [`rng_cursors_for`]).
    pub rng_cursors: Vec<RngCursor>,
    /// Named opaque sections (history, algorithm-specific state).
    pub extras: Vec<(String, Vec<u8>)>,
}

impl Snapshot {
    /// Look up a named extras section.
    pub fn extra(&self, name: &str) -> Option<&[u8]> {
        self.extras
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, b)| b.as_slice())
    }

    /// Check that this snapshot belongs to the run about to resume it:
    /// same algorithm, seed, and round budget; a sane round index; and
    /// RNG stream fingerprints that match what `(seed, next_round)`
    /// regenerates.
    pub fn validate_for(
        &self,
        algorithm: &str,
        seed: u64,
        total_rounds: usize,
    ) -> Result<(), CheckpointError> {
        if self.algorithm != algorithm {
            return Err(CheckpointError::Mismatch(format!(
                "snapshot is from algorithm {:?}, run is {algorithm:?}",
                self.algorithm
            )));
        }
        if self.seed != seed {
            return Err(CheckpointError::Mismatch(format!(
                "snapshot seed {} != run seed {seed}",
                self.seed
            )));
        }
        if self.total_rounds != total_rounds as u64 {
            return Err(CheckpointError::Mismatch(format!(
                "snapshot round budget {} != run budget {total_rounds}",
                self.total_rounds
            )));
        }
        if self.next_round >= self.total_rounds {
            return Err(CheckpointError::Mismatch(format!(
                "snapshot already covers all {} rounds (next_round {})",
                self.total_rounds, self.next_round
            )));
        }
        if self.rng_cursors != rng_cursors_for(seed, self.next_round) {
            return Err(CheckpointError::Mismatch(
                "RNG stream fingerprints do not match (seed, next_round)".into(),
            ));
        }
        Ok(())
    }

    /// Encode the payload (everything after the file header).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_str(&self.algorithm);
        w.put_u64(self.seed);
        w.put_u64(self.total_rounds);
        w.put_u64(self.next_round);
        w.put_vec_f32(&self.w);
        w.put_vec_f32(&self.p);
        w.put_vec_f64(&self.avg_w_sum);
        w.put_u64(self.avg_w_count);
        w.put_vec_f64(&self.avg_p_sum);
        w.put_u64(self.avg_p_count);
        for row in self.comm.parts() {
            for v in row {
                w.put_u64(v);
            }
        }
        w.put_u64(self.faults.crashes);
        w.put_u64(self.faults.outages);
        w.put_u64(self.faults.retries);
        w.put_u64(self.faults.gave_up);
        w.put_u64(self.faults.deadline_missed);
        w.put_f64(self.faults.backoff_s);
        w.put_f64(self.faults.straggler_slots);
        w.put_u64(self.telemetry_seq);
        w.put_u64(self.rng_cursors.len() as u64);
        for c in &self.rng_cursors {
            w.put_u8(c.purpose_tag);
            for s in c.cursor {
                w.put_u64(s);
            }
        }
        w.put_u64(self.extras.len() as u64);
        for (name, bytes) in &self.extras {
            w.put_str(name);
            w.put_bytes(bytes);
        }
        w.into_bytes()
    }

    /// Decode a payload produced by [`Snapshot::encode`]. Rejects trailing
    /// bytes: the payload length is part of the format.
    pub fn decode(payload: &[u8]) -> Result<Self, CheckpointError> {
        let mut r = ByteReader::new(payload);
        let algorithm = r.get_str()?;
        let seed = r.get_u64()?;
        let total_rounds = r.get_u64()?;
        let next_round = r.get_u64()?;
        let w = r.get_vec_f32()?;
        let p = r.get_vec_f32()?;
        let avg_w_sum = r.get_vec_f64()?;
        let avg_w_count = r.get_u64()?;
        let avg_p_sum = r.get_vec_f64()?;
        let avg_p_count = r.get_u64()?;
        let mut comm_parts = [[0u64; 3]; 5];
        for row in comm_parts.iter_mut() {
            for v in row.iter_mut() {
                *v = r.get_u64()?;
            }
        }
        let comm = CommStats::from_parts(comm_parts);
        let faults = FaultStats {
            crashes: r.get_u64()?,
            outages: r.get_u64()?,
            retries: r.get_u64()?,
            gave_up: r.get_u64()?,
            deadline_missed: r.get_u64()?,
            backoff_s: r.get_f64()?,
            straggler_slots: r.get_f64()?,
        };
        let telemetry_seq = r.get_u64()?;
        let n_cursors = r.get_u64()?;
        if n_cursors > 64 {
            return Err(CheckpointError::Malformed(format!(
                "implausible cursor count {n_cursors}"
            )));
        }
        let mut rng_cursors = Vec::with_capacity(n_cursors as usize);
        for _ in 0..n_cursors {
            let purpose_tag = r.get_u8()?;
            let mut cursor = [0u64; 4];
            for s in cursor.iter_mut() {
                *s = r.get_u64()?;
            }
            rng_cursors.push(RngCursor {
                purpose_tag,
                cursor,
            });
        }
        let n_extras = r.get_u64()?;
        if n_extras > 1024 {
            return Err(CheckpointError::Malformed(format!(
                "implausible extras count {n_extras}"
            )));
        }
        let mut extras = Vec::with_capacity(n_extras as usize);
        for _ in 0..n_extras {
            let name = r.get_str()?;
            let bytes = r.get_bytes()?;
            extras.push((name, bytes));
        }
        if r.remaining() != 0 {
            return Err(CheckpointError::Malformed(format!(
                "{} trailing bytes after payload",
                r.remaining()
            )));
        }
        Ok(Snapshot {
            algorithm,
            seed,
            total_rounds,
            next_round,
            w,
            p,
            avg_w_sum,
            avg_w_count,
            avg_p_sum,
            avg_p_count,
            comm,
            faults,
            telemetry_seq,
            rng_cursors,
            extras,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_snapshot() -> Snapshot {
        Snapshot {
            algorithm: "HierMinimax".into(),
            seed: 42,
            total_rounds: 10,
            next_round: 4,
            w: vec![0.5, -1.25, 3.0],
            p: vec![0.25, 0.75],
            avg_w_sum: vec![1.0, 2.0, 3.0],
            avg_w_count: 4,
            avg_p_sum: vec![0.5, 3.5],
            avg_p_count: 4,
            comm: CommStats::from_parts([
                [1, 2, 3],
                [4, 5, 6],
                [7, 8, 9],
                [10, 11, 12],
                [13, 14, 15],
            ]),
            faults: FaultStats {
                crashes: 1,
                outages: 2,
                retries: 3,
                gave_up: 4,
                deadline_missed: 5,
                backoff_s: 0.5,
                straggler_slots: 1.5,
            },
            telemetry_seq: 99,
            rng_cursors: rng_cursors_for(42, 4),
            extras: vec![("history".into(), vec![1, 2, 3, 4])],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let snap = sample_snapshot();
        let payload = snap.encode();
        let back = Snapshot::decode(&payload).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn validate_for_accepts_matching_run() {
        let snap = sample_snapshot();
        snap.validate_for("HierMinimax", 42, 10).unwrap();
    }

    #[test]
    fn validate_for_rejects_mismatches() {
        let snap = sample_snapshot();
        for (alg, seed, rounds) in [
            ("HierFAVG", 42, 10),
            ("HierMinimax", 7, 10),
            ("HierMinimax", 42, 20),
        ] {
            let err = snap.validate_for(alg, seed, rounds).unwrap_err();
            assert!(matches!(err, CheckpointError::Mismatch(_)), "{err}");
        }
    }

    #[test]
    fn validate_for_rejects_completed_run() {
        let mut snap = sample_snapshot();
        snap.next_round = 10;
        snap.rng_cursors = rng_cursors_for(42, 10);
        let err = snap.validate_for("HierMinimax", 42, 10).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch(_)));
    }

    #[test]
    fn validate_for_rejects_forged_round_index() {
        // A forged next_round with unchanged fingerprints must be caught.
        let mut snap = sample_snapshot();
        snap.next_round = 5;
        let err = snap.validate_for("HierMinimax", 42, 10).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch(_)));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let snap = sample_snapshot();
        let mut payload = snap.encode();
        payload.push(0);
        assert!(matches!(
            Snapshot::decode(&payload),
            Err(CheckpointError::Malformed(_))
        ));
    }

    #[test]
    fn cursors_differ_across_rounds_and_purposes() {
        let a = rng_cursors_for(1, 0);
        let b = rng_cursors_for(1, 1);
        assert_eq!(a.len(), FINGERPRINT_PURPOSES.len());
        for (x, y) in a.iter().zip(&b) {
            assert_ne!(x.cursor, y.cursor, "round must decorrelate streams");
        }
        for i in 0..a.len() {
            for j in i + 1..a.len() {
                assert_ne!(a[i].cursor, a[j].cursor, "purposes must decorrelate");
            }
        }
    }
}
