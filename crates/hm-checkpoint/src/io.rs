//! On-disk container: `HMCK` magic, format version, payload, trailing CRC.
//!
//! Layout (all little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"HMCK"
//! 4       4     format version (currently 1)
//! 8       n     payload (see Snapshot::encode)
//! 8+n     4     CRC32 over bytes [0, 8+n)  — header AND payload
//! ```
//!
//! Writes are crash-consistent: the file is written to a `.tmp` sibling,
//! fsynced, then atomically renamed into place, so a reader never observes
//! a half-written checkpoint under POSIX rename semantics.
//!
//! Reads validate in a fixed order — magic, checksum, version, payload —
//! chosen so the most likely defects produce the most specific errors:
//! a non-checkpoint file fails on magic before the CRC is even computed,
//! any bit flip or truncation fails the checksum, and only a structurally
//! intact file of a foreign version reaches the version check.

use crate::error::CheckpointError;
use crate::format::crc32;
use crate::snapshot::Snapshot;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// File magic: first four bytes of every checkpoint.
pub const MAGIC: [u8; 4] = *b"HMCK";

/// Current (and only) format version.
pub const FORMAT_VERSION: u32 = 1;

/// Serialize `snap` into the full file image (header + payload + CRC).
pub fn to_file_bytes(snap: &Snapshot) -> Vec<u8> {
    let payload = snap.encode();
    let mut bytes = Vec::with_capacity(payload.len() + 12);
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&payload);
    let crc = crc32(&bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());
    bytes
}

/// Parse a full file image produced by [`to_file_bytes`].
pub fn from_file_bytes(bytes: &[u8]) -> Result<Snapshot, CheckpointError> {
    if bytes.len() < 4 || bytes[..4] != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    if bytes.len() < 12 {
        return Err(CheckpointError::Truncated);
    }
    let body = &bytes[..bytes.len() - 4];
    let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
    let computed = crc32(body);
    if stored != computed {
        return Err(CheckpointError::CrcMismatch { stored, computed });
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(CheckpointError::UnsupportedVersion(version));
    }
    Snapshot::decode(&body[8..])
}

/// Write `snap` to `path` atomically (tmp file + fsync + rename).
pub fn write_snapshot(path: &Path, snap: &Snapshot) -> Result<(), CheckpointError> {
    let bytes = to_file_bytes(snap);
    let tmp = path.with_extension("hmck.tmp");
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Read and fully validate a snapshot from `path`.
pub fn read_snapshot(path: &Path) -> Result<Snapshot, CheckpointError> {
    let bytes = fs::read(path)?;
    from_file_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::rng_cursors_for;
    use hm_simnet::{CommStats, FaultStats};
    use proptest::prelude::*;

    fn sample() -> Snapshot {
        Snapshot {
            algorithm: "HierMinimax".into(),
            seed: 42,
            total_rounds: 10,
            next_round: 4,
            w: vec![0.5, -1.25, 3.0],
            p: vec![0.25, 0.75],
            avg_w_sum: vec![1.0, 2.0, 3.0],
            avg_w_count: 4,
            avg_p_sum: vec![0.5, 3.5],
            avg_p_count: 4,
            comm: CommStats::from_parts([
                [1, 2, 3],
                [4, 5, 6],
                [7, 8, 9],
                [10, 11, 12],
                [13, 14, 15],
            ]),
            faults: FaultStats::default(),
            telemetry_seq: 99,
            rng_cursors: rng_cursors_for(42, 4),
            extras: vec![("history".into(), vec![9, 8, 7])],
        }
    }

    #[test]
    fn file_roundtrip_via_disk() {
        let dir = std::env::temp_dir().join("hmck-io-test");
        let path = dir.join("snap.hmck");
        let snap = sample();
        write_snapshot(&path, &snap).unwrap();
        let back = read_snapshot(&path).unwrap();
        assert_eq!(back, snap);
        // The tmp sibling must not linger after a successful write.
        assert!(!path.with_extension("hmck.tmp").exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_magic_detected_before_anything_else() {
        let mut bytes = to_file_bytes(&sample());
        bytes[0] = b'X';
        assert!(matches!(
            from_file_bytes(&bytes),
            Err(CheckpointError::BadMagic)
        ));
        assert!(matches!(
            from_file_bytes(b"no"),
            Err(CheckpointError::BadMagic)
        ));
    }

    #[test]
    fn version_bump_is_unsupported_not_crc_garbage() {
        // A future version with a correct checksum must fail on the
        // version check, not decode as garbage.
        let payload = sample().encode();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&payload);
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            from_file_bytes(&bytes),
            Err(CheckpointError::UnsupportedVersion(2))
        ));
    }

    #[test]
    fn truncation_never_loads() {
        let bytes = to_file_bytes(&sample());
        for cut in [4, 8, 11, bytes.len() / 2, bytes.len() - 1] {
            let err = from_file_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    CheckpointError::Truncated | CheckpointError::CrcMismatch { .. }
                ),
                "cut at {cut} gave {err}"
            );
        }
    }

    proptest! {
        /// Any single flipped byte anywhere in the file is caught — the
        /// CRC covers header and payload alike, and a flip inside the
        /// trailing CRC itself also mismatches.
        #[test]
        fn any_single_byte_flip_is_caught(offset in 0usize..1024, xor in 1u8..=255) {
            let mut bytes = to_file_bytes(&sample());
            let offset = offset % bytes.len();
            bytes[offset] ^= xor;
            let res = from_file_bytes(&bytes);
            prop_assert!(
                matches!(
                    res,
                    Err(CheckpointError::BadMagic
                        | CheckpointError::CrcMismatch { .. })
                ),
                "flip at {offset} gave {res:?}"
            );
        }

        /// Any truncation point yields a typed error, never a partial load.
        #[test]
        fn any_truncation_is_caught(cut in 0usize..1024) {
            let bytes = to_file_bytes(&sample());
            let cut = cut % bytes.len(); // strictly shorter than the file
            let res = from_file_bytes(&bytes[..cut]);
            prop_assert!(res.is_err(), "cut at {cut} gave {res:?}");
        }
    }
}
