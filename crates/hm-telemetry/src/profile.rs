//! Per-phase runtime profiling: span timers, fixed-bucket histograms, and
//! the [`Profiler`] handle run loops carry next to [`Telemetry`].
//!
//! The design constraints mirror the rest of this crate:
//!
//! - **Provably inert.** A disabled profiler is a `None`: timers never read
//!   the clock and `record` is one branch. An *enabled* profiler emits its
//!   [`TelemetryEvent::Span`] / [`TelemetryEvent::ProfileSummary`] events
//!   *unsequenced*, so the sequenced event stream — and with it checkpoint
//!   `seq` values, resume splices, and conformance digests — is
//!   bit-identical between profiled and unprofiled runs
//!   (`tests/profile.rs` proves this over the full engine × parallelism
//!   matrix).
//! - **No dependencies.** Quantiles come from a small fixed log-spaced
//!   bucket histogram, not a sketch library: bucket 0 holds spans below
//!   1 µs and every later bucket doubles the bound, so 40 buckets cover
//!   1 µs … ≈ 9 minutes with ≤ 2× relative error on p50/p90/p99.
//! - **Deterministic payloads aside from the clock.** All spans are
//!   recorded from the coordinator thread in a fixed order (worker-side
//!   chain timings are measured in the worker but recorded after the
//!   join, in edge order), so two profiled runs differ only in measured
//!   durations, never in event order or shape.

use crate::event::TelemetryEvent;
use crate::json::ObjWriter;
use crate::sink::Telemetry;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// Number of histogram buckets per phase.
pub const HIST_BUCKETS: usize = 40;
/// Upper bound of bucket 0 in seconds; bucket `i` spans
/// `[HIST_BASE_S * 2^(i-1), HIST_BASE_S * 2^i)`.
pub const HIST_BASE_S: f64 = 1e-6;

/// The profiled phases, one per span taxonomy entry (DESIGN.md §13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// One full cloud round (phase 1 + phase 2 + bookkeeping).
    Round,
    /// Phase-1 participant/checkpoint sampling and broadcast setup.
    Phase1Sampling,
    /// One edge's local-SGD chain (all `τ2` blocks), per edge.
    LocalSgdChain,
    /// Cloud-side aggregation of edge results.
    Aggregation,
    /// Phase-2 loss estimation and the projected dual ascent step.
    DualUpdate,
    /// Held-out evaluation snapshot.
    Eval,
    /// Crash-consistent snapshot serialization + atomic write.
    CheckpointWrite,
    /// Fault-injected delivery retry loops (time spent re-attempting).
    FaultRetry,
}

impl Phase {
    /// Every phase, in canonical summary order.
    pub const ALL: [Phase; 8] = [
        Phase::Round,
        Phase::Phase1Sampling,
        Phase::LocalSgdChain,
        Phase::Aggregation,
        Phase::DualUpdate,
        Phase::Eval,
        Phase::CheckpointWrite,
        Phase::FaultRetry,
    ];

    /// The tag this phase serializes under in `span` events.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Round => "round",
            Phase::Phase1Sampling => "phase1_sampling",
            Phase::LocalSgdChain => "local_sgd_chain",
            Phase::Aggregation => "aggregation",
            Phase::DualUpdate => "dual_update",
            Phase::Eval => "eval",
            Phase::CheckpointWrite => "checkpoint_write",
            Phase::FaultRetry => "fault_retry",
        }
    }

    /// Position in [`Phase::ALL`] for `tag`, used to order summaries
    /// canonically; unknown tags sort after every known phase.
    fn order(tag: &str) -> usize {
        Phase::ALL
            .iter()
            .position(|p| p.as_str() == tag)
            .unwrap_or(Phase::ALL.len())
    }
}

/// Aggregate statistics for one phase, as carried by
/// [`TelemetryEvent::ProfileSummary`] and rendered by `hm-cli report`.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseAgg {
    /// Phase tag (a [`Phase::as_str`] value, or an unknown tag when
    /// re-aggregated from a future stream).
    pub phase: String,
    /// Spans recorded.
    pub count: u64,
    /// Sum of span durations in seconds.
    pub total_s: f64,
    /// Shortest span.
    pub min_s: f64,
    /// Longest span.
    pub max_s: f64,
    /// Estimated median (histogram bucket upper bound, clamped to max).
    pub p50_s: f64,
    /// Estimated 90th percentile.
    pub p90_s: f64,
    /// Estimated 99th percentile.
    pub p99_s: f64,
}

/// Serialize a summary's phase list as a JSON array (fixed key order).
pub fn phases_to_json(phases: &[PhaseAgg]) -> String {
    let mut out = String::from("[");
    for (i, p) in phases.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let mut w = ObjWriter::new();
        w.str("phase", &p.phase)
            .u64("count", p.count)
            .f64("total_s", p.total_s)
            .f64("min_s", p.min_s)
            .f64("max_s", p.max_s)
            .f64("p50_s", p.p50_s)
            .f64("p90_s", p.p90_s)
            .f64("p99_s", p.p99_s);
        out.push_str(&w.finish());
    }
    out.push(']');
    out
}

/// Histogram bucket index for a duration: 0 below [`HIST_BASE_S`], then
/// one bucket per doubling, saturating at the last bucket.
fn bucket_for(seconds: f64) -> usize {
    if seconds.is_nan() || seconds <= HIST_BASE_S {
        return 0;
    }
    let b = 1 + (seconds / HIST_BASE_S).log2().floor() as usize;
    b.min(HIST_BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` in seconds.
fn bucket_upper(i: usize) -> f64 {
    HIST_BASE_S * (1u64 << i) as f64
}

#[derive(Debug, Clone)]
struct PhaseAcc {
    count: u64,
    total_s: f64,
    min_s: f64,
    max_s: f64,
    buckets: [u64; HIST_BUCKETS],
}

impl PhaseAcc {
    fn new() -> Self {
        Self {
            count: 0,
            total_s: 0.0,
            min_s: f64::INFINITY,
            max_s: 0.0,
            buckets: [0; HIST_BUCKETS],
        }
    }

    fn add(&mut self, seconds: f64) {
        let s = seconds.max(0.0);
        self.count += 1;
        self.total_s += s;
        self.min_s = self.min_s.min(s);
        self.max_s = self.max_s.max(s);
        self.buckets[bucket_for(s)] += 1;
    }

    /// Smallest bucket upper bound covering quantile `q` of the recorded
    /// spans, clamped into the observed `[min, max]` range.
    fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_upper(i).clamp(self.min_s, self.max_s);
            }
        }
        self.max_s
    }

    fn agg(&self, phase: &str) -> PhaseAgg {
        PhaseAgg {
            phase: phase.to_string(),
            count: self.count,
            total_s: self.total_s,
            min_s: if self.count == 0 { 0.0 } else { self.min_s },
            max_s: self.max_s,
            p50_s: self.quantile(0.50),
            p90_s: self.quantile(0.90),
            p99_s: self.quantile(0.99),
        }
    }
}

/// Accumulates spans into per-phase aggregates. Used live by the
/// [`Profiler`] and offline by `hm-cli report`, which re-aggregates the
/// `span` events of any telemetry stream (including spliced crash/resume
/// streams whose final `profile_summary` covers only the resumed suffix).
#[derive(Debug, Clone, Default)]
pub struct SpanAggregator {
    accs: BTreeMap<String, PhaseAcc>,
}

impl SpanAggregator {
    /// Empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one span of `seconds` under `phase`.
    pub fn add(&mut self, phase: &str, seconds: f64) {
        self.accs
            .entry(phase.to_string())
            .or_insert_with(PhaseAcc::new)
            .add(seconds);
    }

    /// `true` when no spans were recorded.
    pub fn is_empty(&self) -> bool {
        self.accs.is_empty()
    }

    /// Per-phase aggregates in canonical order ([`Phase::ALL`] first,
    /// unknown tags after, alphabetically).
    pub fn summary(&self) -> Vec<PhaseAgg> {
        let mut phases: Vec<PhaseAgg> = self.accs.iter().map(|(tag, a)| a.agg(tag)).collect();
        phases.sort_by(|a, b| {
            (Phase::order(&a.phase), a.phase.as_str())
                .cmp(&(Phase::order(&b.phase), b.phase.as_str()))
        });
        phases
    }
}

/// Cheap, cloneable profiling handle carried in `RunOpts` next to the
/// telemetry handle.
///
/// Disabled (the default) it is a `None`: [`Profiler::start`] never reads
/// the clock and [`Profiler::record`] is one branch. Enabled, it
/// accumulates per-phase aggregates and emits unsequenced `span` events
/// through whatever [`Telemetry`] handle the caller passes (a disabled
/// telemetry handle drops the events but keeps the aggregates, so
/// `--profile` works without `--telemetry`).
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    inner: Option<Arc<Mutex<SpanAggregator>>>,
}

impl Profiler {
    /// The disabled handle (same as `Default`).
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An enabled handle with an empty aggregator.
    pub fn enabled() -> Self {
        Self {
            inner: Some(Arc::new(Mutex::new(SpanAggregator::new()))),
        }
    }

    /// `true` when profiling is on.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Start a span timer. Disabled handles return a timer that never
    /// touched the clock.
    #[inline]
    pub fn start(&self) -> SpanTimer {
        SpanTimer(self.inner.as_ref().map(|_| Instant::now()))
    }

    /// Close `timer` and record it under `phase`, emitting an unsequenced
    /// `span` event through `tel`. No-op when disabled.
    #[inline]
    pub fn record(
        &self,
        tel: &Telemetry,
        phase: Phase,
        round: Option<usize>,
        entity: Option<usize>,
        timer: SpanTimer,
    ) {
        if self.inner.is_some() {
            self.record_secs(tel, phase, round, entity, timer.elapsed_s());
        }
    }

    /// Record an externally measured duration (e.g. a chain timed inside a
    /// rayon worker and reported after the join). No-op when disabled.
    pub fn record_secs(
        &self,
        tel: &Telemetry,
        phase: Phase,
        round: Option<usize>,
        entity: Option<usize>,
        elapsed_s: f64,
    ) {
        if let Some(inner) = &self.inner {
            inner.lock().add(phase.as_str(), elapsed_s);
            tel.record_unsequenced(|| TelemetryEvent::Span {
                phase: phase.as_str().to_string(),
                round,
                entity,
                elapsed_s,
            });
        }
    }

    /// Snapshot of the per-phase aggregates so far (empty when disabled).
    pub fn summary(&self) -> Vec<PhaseAgg> {
        match &self.inner {
            Some(inner) => inner.lock().summary(),
            None => Vec::new(),
        }
    }

    /// Emit the end-of-run [`TelemetryEvent::ProfileSummary`]
    /// (unsequenced). No-op when disabled or when nothing was recorded.
    pub fn emit_summary(&self, tel: &Telemetry) {
        if let Some(inner) = &self.inner {
            let phases = inner.lock().summary();
            if !phases.is_empty() {
                tel.record_unsequenced(|| TelemetryEvent::ProfileSummary { phases });
            }
        }
    }
}

/// Scoped monotonic timer handed out by [`Profiler::start`].
#[derive(Debug, Clone, Copy)]
pub struct SpanTimer(Option<Instant>);

impl SpanTimer {
    /// Seconds since the timer was started; `0.0` if started disabled.
    pub fn elapsed_s(&self) -> f64 {
        match self.0 {
            Some(t0) => t0.elapsed().as_secs_f64(),
            None => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;

    #[test]
    fn disabled_profiler_is_inert() {
        let p = Profiler::disabled();
        assert!(!p.is_enabled());
        let sink = Arc::new(MemorySink::new());
        let tel = Telemetry::with_sink(sink.clone());
        p.record(&tel, Phase::Round, Some(0), None, p.start());
        p.record_secs(&tel, Phase::Eval, None, None, 1.0);
        p.emit_summary(&tel);
        assert!(sink.is_empty(), "disabled profiler must emit nothing");
        assert!(p.summary().is_empty());
    }

    #[test]
    fn spans_are_emitted_unsequenced() {
        let sink = Arc::new(MemorySink::new());
        let tel = Telemetry::with_sink(sink.clone());
        let p = Profiler::enabled();
        p.record_secs(&tel, Phase::Round, Some(3), None, 0.25);
        p.record_secs(&tel, Phase::LocalSgdChain, Some(3), Some(1), 0.125);
        p.emit_summary(&tel);
        assert_eq!(tel.seq(), 0, "profiling must not advance the sequence");
        let events = sink.events();
        assert_eq!(events.len(), 3);
        assert!(matches!(
            &events[0],
            TelemetryEvent::Span { phase, round: Some(3), entity: None, elapsed_s }
                if phase == "round" && *elapsed_s == 0.25
        ));
        assert!(
            matches!(&events[2], TelemetryEvent::ProfileSummary { phases } if phases.len() == 2)
        );
    }

    #[test]
    fn aggregates_track_count_total_min_max() {
        let p = Profiler::enabled();
        let tel = Telemetry::disabled();
        for s in [0.010, 0.020, 0.040] {
            p.record_secs(&tel, Phase::Aggregation, None, None, s);
        }
        let summary = p.summary();
        assert_eq!(summary.len(), 1);
        let a = &summary[0];
        assert_eq!(a.phase, "aggregation");
        assert_eq!(a.count, 3);
        assert!((a.total_s - 0.070).abs() < 1e-12);
        assert_eq!(a.min_s, 0.010);
        assert_eq!(a.max_s, 0.040);
        // Quantile estimates are clamped into the observed range.
        assert!(a.p50_s >= a.min_s && a.p50_s <= a.max_s);
        assert!(a.p99_s >= a.p50_s && a.p99_s <= a.max_s);
    }

    #[test]
    fn quantiles_land_in_the_right_bucket() {
        let mut agg = SpanAggregator::new();
        // 99 spans of ~1 ms, one of ~1 s: p50/p90 near 1 ms, p99+ sees 1 s.
        for _ in 0..99 {
            agg.add("round", 1.0e-3);
        }
        agg.add("round", 1.0);
        let a = &agg.summary()[0];
        assert!(a.p50_s < 4.0e-3, "p50 {} should be ~1ms", a.p50_s);
        assert!(a.p90_s < 4.0e-3, "p90 {} should be ~1ms", a.p90_s);
        assert!(a.p99_s < 4.0e-3, "p99 covers the 99th of 100 spans");
        assert_eq!(a.max_s, 1.0);
    }

    #[test]
    fn summary_orders_phases_canonically() {
        let mut agg = SpanAggregator::new();
        for tag in ["eval", "round", "zz_future_phase", "aggregation"] {
            agg.add(tag, 0.5);
        }
        let order: Vec<String> = agg.summary().into_iter().map(|a| a.phase).collect();
        assert_eq!(order, ["round", "aggregation", "eval", "zz_future_phase"]);
    }

    #[test]
    fn bucket_edges_saturate() {
        assert_eq!(bucket_for(0.0), 0);
        assert_eq!(bucket_for(-1.0), 0);
        assert_eq!(bucket_for(HIST_BASE_S), 0);
        assert_eq!(bucket_for(1e9), HIST_BUCKETS - 1);
        assert!(bucket_for(2.5e-6) >= 1);
    }

    #[test]
    fn phase_tags_round_trip_through_order() {
        for (i, p) in Phase::ALL.into_iter().enumerate() {
            assert_eq!(Phase::order(p.as_str()), i);
        }
        assert_eq!(Phase::order("not_a_phase"), Phase::ALL.len());
    }

    #[test]
    fn summary_json_parses_and_validates_shape() {
        let mut agg = SpanAggregator::new();
        agg.add("round", 0.125);
        let json = phases_to_json(&agg.summary());
        let v = crate::json::parse(&json).unwrap();
        let arr = v.as_arr().unwrap();
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].get("phase").unwrap().as_str(), Some("round"));
        assert_eq!(arr[0].get("count").unwrap().as_u64(), Some(1));
        assert_eq!(arr[0].get("total_s").unwrap().as_f64(), Some(0.125));
    }
}
