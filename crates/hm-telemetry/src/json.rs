//! Minimal JSON support: a writer for the fixed event grammar and a
//! recursive-descent parser for validating emitted streams.
//!
//! Hand-rolled on purpose — the workspace is dependency-hermetic (no
//! serde), the grammar the events need is tiny, and the parser doubles as
//! the schema validator's front end, so both directions live here where
//! they can be round-trip-tested against each other.

use std::fmt::Write as _;

// ---- Writing --------------------------------------------------------------

/// Escape `s` into `out` as the *contents* of a JSON string (no quotes).
pub fn escape_str(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Format a float as a JSON value. Rust's shortest-roundtrip `{}` output is
/// valid JSON for finite values; non-finite values (which JSON cannot
/// express) become `null`.
pub fn fmt_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Incremental writer for a single JSON object. Keys are written verbatim
/// (the event grammar uses plain ASCII identifiers only).
#[derive(Debug)]
pub struct ObjWriter {
    buf: String,
    first: bool,
}

impl Default for ObjWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl ObjWriter {
    /// Start an object.
    pub fn new() -> Self {
        Self {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        self.buf.push_str(k);
        self.buf.push_str("\":");
    }

    /// String field.
    pub fn str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        self.buf.push('"');
        escape_str(v, &mut self.buf);
        self.buf.push('"');
        self
    }

    /// Unsigned integer field.
    pub fn u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// `usize` field.
    pub fn usize(&mut self, k: &str, v: usize) -> &mut Self {
        self.u64(k, v as u64)
    }

    /// Float field (`null` when non-finite).
    pub fn f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        fmt_f64(v, &mut self.buf);
        self
    }

    /// Explicit `null` field.
    pub fn null(&mut self, k: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str("null");
        self
    }

    /// Pre-serialized JSON value field (for nested objects).
    pub fn raw(&mut self, k: &str, json: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str(json);
        self
    }

    /// Array of `usize`.
    pub fn arr_usize(&mut self, k: &str, v: &[usize]) -> &mut Self {
        self.key(k);
        self.buf.push('[');
        for (i, x) in v.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            let _ = write!(self.buf, "{x}");
        }
        self.buf.push(']');
        self
    }

    /// Array of `u64`.
    pub fn arr_u64(&mut self, k: &str, v: &[u64]) -> &mut Self {
        self.key(k);
        self.buf.push('[');
        for (i, x) in v.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            let _ = write!(self.buf, "{x}");
        }
        self.buf.push(']');
        self
    }

    /// Array of `f64` (non-finite entries become `null`).
    pub fn arr_f64(&mut self, k: &str, v: &[f64]) -> &mut Self {
        self.key(k);
        self.buf.push('[');
        for (i, &x) in v.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            fmt_f64(x, &mut self.buf);
        }
        self.buf.push(']');
        self
    }

    /// Array of `f32`, widened so the printed value round-trips exactly.
    pub fn arr_f32(&mut self, k: &str, v: &[f32]) -> &mut Self {
        self.key(k);
        self.buf.push('[');
        for (i, &x) in v.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            if x.is_finite() {
                let _ = write!(self.buf, "{x}");
            } else {
                self.buf.push_str("null");
            }
        }
        self.buf.push(']');
        self
    }

    /// Close the object and return the serialized text.
    pub fn finish(self) -> String {
        let mut buf = self.buf;
        buf.push('}');
        buf
    }
}

// ---- Parsing --------------------------------------------------------------

/// A parsed JSON value. Numbers keep their raw text so integers survive
/// without a lossy f64 round trip.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its source text.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// Numeric value as `u64` (exact: parses the raw digits, so counters
    /// above 2^53 are not truncated).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// `true` when `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

/// Parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document (trailing content is an error).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {text}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        // Delegate grammar checking to the float parser (accepts a
        // superset of JSON numbers, e.g. "1.", which is fine here: the
        // writer never emits those and the validator cares about values).
        raw.parse::<f64>()
            .map_err(|_| self.err(&format!("bad number {raw:?}")))?;
        Ok(Json::Num(raw.to_string()))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("bad low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?,
                            );
                            continue; // hex4 advanced pos already
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character")),
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn writer_produces_parseable_objects() {
        let mut w = ObjWriter::new();
        w.str("ev", "round_end")
            .usize("round", 3)
            .f64("sim_s", 0.125)
            .arr_usize("edges", &[2, 0, 2])
            .arr_f64("losses", &[0.5, f64::NAN])
            .null("c1")
            .raw("nested", "{\"a\":[1,2]}");
        let text = w.finish();
        let v = parse(&text).unwrap();
        assert_eq!(v.get("ev").unwrap().as_str(), Some("round_end"));
        assert_eq!(v.get("round").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("sim_s").unwrap().as_f64(), Some(0.125));
        assert_eq!(v.get("edges").unwrap().as_arr().unwrap().len(), 3);
        // Non-finite floats serialize as null.
        assert!(v.get("losses").unwrap().as_arr().unwrap()[1].is_null());
        assert!(v.get("c1").unwrap().is_null());
        assert_eq!(
            v.get("nested").unwrap().get("a").unwrap().as_arr().unwrap()[1].as_u64(),
            Some(2)
        );
    }

    #[test]
    fn string_escapes_round_trip() {
        let nasty = "a\"b\\c\nd\te\u{1}f — π \u{1F600}";
        let mut w = ObjWriter::new();
        w.str("s", nasty);
        let v = parse(&w.finish()).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn unicode_escapes_parse() {
        let v = parse(r#"{"s":"A😀"}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("A\u{1F600}"));
    }

    #[test]
    fn large_u64_survives_exactly() {
        let big = u64::MAX - 1;
        let mut w = ObjWriter::new();
        w.u64("n", big);
        let v = parse(&w.finish()).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(big));
    }

    #[test]
    fn malformed_inputs_rejected() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1} trailing",
            "\"unterminated",
            "{\"a\" 1}",
            "nul",
            "+1",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn numbers_parse_exactly() {
        let v = parse("[0, -3, 2.5, 1e3, -1.25e-2]").unwrap();
        let a = v.as_arr().unwrap();
        assert_eq!(a[0].as_u64(), Some(0));
        assert_eq!(a[1].as_f64(), Some(-3.0));
        assert_eq!(a[2].as_f64(), Some(2.5));
        assert_eq!(a[3].as_f64(), Some(1000.0));
        assert_eq!(a[4].as_f64(), Some(-0.0125));
        // as_u64 on a negative/fractional number is None, not a wrap.
        assert_eq!(a[1].as_u64(), None);
        assert_eq!(a[2].as_u64(), None);
    }

    proptest! {
        /// Any f64 bit pattern written by the writer parses back to the
        /// same value (or null for non-finite patterns).
        #[test]
        fn prop_floats_round_trip(bits in any::<u64>()) {
            let x = f64::from_bits(bits);
            let mut w = ObjWriter::new();
            w.f64("x", x);
            let v = parse(&w.finish()).unwrap();
            let back = v.get("x").unwrap();
            if x.is_finite() {
                prop_assert_eq!(back.as_f64().unwrap().to_bits(), x.to_bits());
            } else {
                prop_assert!(back.is_null());
            }
        }

        /// Any string round-trips through escape + parse.
        #[test]
        fn prop_strings_round_trip(codes in prop::collection::vec(0u32..0x11_0000, 0..24)) {
            let s: String = codes.into_iter().filter_map(char::from_u32).collect();
            let mut w = ObjWriter::new();
            w.str("s", &s);
            let v = parse(&w.finish()).unwrap();
            prop_assert_eq!(v.get("s").unwrap().as_str(), Some(s.as_str()));
        }
    }
}
