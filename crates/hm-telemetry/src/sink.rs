//! Sinks and the [`Telemetry`] handle algorithms carry.
//!
//! The handle mirrors `hm_simnet::trace::Trace`: a disabled handle is a
//! `None` inside, so `record` is one branch and the event-building closure
//! is never called. Enabling telemetry therefore cannot perturb a run —
//! payload construction (clones of `p`, loss vectors, comm snapshots)
//! happens only when a sink is attached, and only at round boundaries.

use crate::event::TelemetryEvent;
use hm_simnet::{CommStats, LatencyModel};
use parking_lot::Mutex;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Destination for telemetry events.
///
/// Implementations must be thread-safe: hierarchical algorithms emit
/// block-level events from rayon workers.
pub trait Sink: Send + Sync + std::fmt::Debug {
    /// Consume one event.
    fn emit(&self, event: &TelemetryEvent);

    /// Flush any buffered output (called at run end and on drop of the
    /// last handle). Default: nothing to flush.
    fn flush(&self) {}
}

/// Sink that discards every event. Exists so "telemetry object present but
/// off" costs one virtual call per round-boundary event and nothing more;
/// prefer [`Telemetry::disabled`], which skips even payload construction.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn emit(&self, _event: &TelemetryEvent) {}
}

/// Sink that buffers events in memory, for tests.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<TelemetryEvent>>,
}

impl MemorySink {
    /// New empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of the events received so far, in emission order.
    pub fn events(&self) -> Vec<TelemetryEvent> {
        self.events.lock().clone()
    }

    /// Number of events received so far.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// `true` when no events have been received.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }
}

impl Sink for MemorySink {
    fn emit(&self, event: &TelemetryEvent) {
        self.events.lock().push(event.clone());
    }
}

/// Sink that appends one JSON line per event to a file.
///
/// Writes are buffered; I/O errors after opening are swallowed (telemetry
/// must never abort a training run) but latch a flag queryable via
/// [`JsonlSink::had_errors`].
#[derive(Debug)]
pub struct JsonlSink {
    path: PathBuf,
    file: Mutex<BufWriter<File>>,
    errored: std::sync::atomic::AtomicBool,
}

impl JsonlSink {
    /// Create (truncate) `path` and return a sink writing to it.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        Ok(Self {
            path,
            file: Mutex::new(BufWriter::new(file)),
            errored: std::sync::atomic::AtomicBool::new(false),
        })
    }

    /// The path this sink writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// `true` if any write or flush failed since creation.
    pub fn had_errors(&self) -> bool {
        self.errored.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl Sink for JsonlSink {
    fn emit(&self, event: &TelemetryEvent) {
        let mut f = self.file.lock();
        if writeln!(f, "{}", event.to_json()).is_err() {
            self.errored
                .store(true, std::sync::atomic::Ordering::Relaxed);
        }
    }

    fn flush(&self) {
        if self.file.lock().flush().is_err() {
            self.errored
                .store(true, std::sync::atomic::Ordering::Relaxed);
        }
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.file.lock().flush();
    }
}

#[derive(Debug)]
struct Inner {
    sink: Arc<dyn Sink>,
    latency: LatencyModel,
    /// Events emitted through this handle (and its clones). Checkpoint
    /// snapshots store it so a resumed run can continue the sequence.
    seq: std::sync::atomic::AtomicU64,
}

/// Cheap, cloneable telemetry handle carried in `RunOpts`.
///
/// Disabled (the default) it is a `None`: recording is one branch, timers
/// never read the clock, and simulated-seconds queries return `0.0`.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// The disabled handle (same as `Default`).
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Enabled handle emitting into `sink`, with the
    /// [`LatencyModel::mobile_edge`] cost model.
    pub fn with_sink(sink: Arc<dyn Sink>) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                sink,
                latency: LatencyModel::mobile_edge(),
                seq: std::sync::atomic::AtomicU64::new(0),
            })),
        }
    }

    /// Replace the latency model used for `sim_s` fields.
    pub fn with_latency(self, latency: LatencyModel) -> Self {
        Self {
            inner: self.inner.map(|inner| {
                Arc::new(Inner {
                    sink: Arc::clone(&inner.sink),
                    latency,
                    seq: std::sync::atomic::AtomicU64::new(
                        inner.seq.load(std::sync::atomic::Ordering::Relaxed),
                    ),
                })
            }),
        }
    }

    /// Enabled handle writing JSONL to `path` (truncates).
    pub fn jsonl(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(Self::with_sink(Arc::new(JsonlSink::create(path)?)))
    }

    /// `true` when a sink is attached.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Emit an event and advance the sequence counter. The closure runs
    /// only when enabled, so payload clones cost nothing on the disabled
    /// path.
    #[inline]
    pub fn record(&self, make: impl FnOnce() -> TelemetryEvent) {
        if let Some(inner) = &self.inner {
            inner.sink.emit(&make());
            inner.seq.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }

    /// Emit an event *without* advancing the sequence counter. Used for
    /// the `run_resume` preamble: the resumed run must produce later
    /// `checkpoint` events with the same seq values as the uninterrupted
    /// run, so the preamble itself stays outside the count.
    #[inline]
    pub fn record_unsequenced(&self, make: impl FnOnce() -> TelemetryEvent) {
        if let Some(inner) = &self.inner {
            inner.sink.emit(&make());
        }
    }

    /// Events emitted so far through this handle and its clones (`0` when
    /// disabled).
    pub fn seq(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.seq.load(std::sync::atomic::Ordering::Relaxed),
            None => 0,
        }
    }

    /// Set the sequence counter, inheriting a checkpointed run's position
    /// on resume. No-op when disabled.
    pub fn set_seq(&self, seq: u64) {
        if let Some(inner) = &self.inner {
            inner.seq.store(seq, std::sync::atomic::Ordering::Relaxed);
        }
    }

    /// Start a phase timer. Disabled handles return a timer that never
    /// touched the clock and reports `0.0`.
    #[inline]
    pub fn timer(&self) -> PhaseTimer {
        PhaseTimer(self.inner.as_ref().map(|_| Instant::now()))
    }

    /// Simulated deployment seconds for a run prefix under this handle's
    /// latency model; `0.0` when disabled.
    ///
    /// `edge_areas` is the number of disjoint client-edge networks
    /// transferring concurrently per round (the participating edge count
    /// for hierarchical methods, `1` for flat methods, which meter no
    /// `ClientEdge` floats anyway) — see
    /// [`LatencyModel::simulated_seconds_parallel`].
    pub fn sim_seconds(&self, stats: &CommStats, slots: usize, edge_areas: usize) -> f64 {
        match &self.inner {
            Some(inner) => inner
                .latency
                .simulated_seconds_parallel(stats, slots, edge_areas),
            None => 0.0,
        }
    }

    /// Extra simulated seconds caused by injected faults: straggler wait
    /// slots priced at the latency model's per-slot client step time, plus
    /// retry backoff (already in seconds). `0.0` when disabled, matching
    /// [`Telemetry::sim_seconds`].
    pub fn fault_seconds(&self, extra_slots: f64, backoff_s: f64) -> f64 {
        match &self.inner {
            Some(inner) => extra_slots * inner.latency.client_step_s + backoff_s,
            None => 0.0,
        }
    }

    /// Flush the sink (no-op when disabled).
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.sink.flush();
        }
    }
}

/// Scoped monotonic timer handed out by [`Telemetry::timer`].
#[derive(Debug, Clone, Copy)]
pub struct PhaseTimer(Option<Instant>);

impl PhaseTimer {
    /// Seconds since the timer was started; `0.0` if started disabled.
    pub fn elapsed_s(&self) -> f64 {
        match self.0 {
            Some(t0) => t0.elapsed().as_secs_f64(),
            None => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hm_simnet::{CommMeter, Link};

    fn ev(round: usize) -> TelemetryEvent {
        TelemetryEvent::RoundStart { round }
    }

    #[test]
    fn disabled_handle_never_builds_payloads() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.record(|| unreachable!("closure must not run when disabled"));
        assert_eq!(t.timer().elapsed_s(), 0.0);
        let stats = CommMeter::new().snapshot();
        assert_eq!(t.sim_seconds(&stats, 100, 1), 0.0);
        t.flush();
    }

    #[test]
    fn memory_sink_collects_in_order() {
        let sink = Arc::new(MemorySink::new());
        let t = Telemetry::with_sink(sink.clone());
        assert!(t.is_enabled());
        for k in 0..3 {
            t.record(|| ev(k));
        }
        assert_eq!(sink.events(), vec![ev(0), ev(1), ev(2)]);
        assert_eq!(sink.len(), 3);
        assert!(!sink.is_empty());
    }

    #[test]
    fn clones_share_the_sink() {
        let sink = Arc::new(MemorySink::new());
        let t = Telemetry::with_sink(sink.clone());
        let t2 = t.clone();
        t.record(|| ev(0));
        t2.record(|| ev(1));
        assert_eq!(sink.len(), 2);
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let dir = std::env::temp_dir().join("hm_telemetry_sink_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let t = Telemetry::jsonl(&path).unwrap();
        t.record(|| ev(0));
        t.record(|| TelemetryEvent::RunEnd {
            rounds: 1,
            slots: 4,
            comm_total: CommMeter::new().snapshot(),
            sim_s: 0.0,
            elapsed_s: 0.0,
        });
        t.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            crate::json::parse(line).unwrap();
        }
        assert!(lines[0].contains("\"ev\":\"round_start\""));
        assert!(lines[1].contains("\"ev\":\"run_end\""));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn enabled_timer_reads_the_clock() {
        let t = Telemetry::with_sink(Arc::new(NoopSink));
        let timer = t.timer();
        assert!(timer.elapsed_s() >= 0.0);
    }

    #[test]
    fn latency_override_changes_sim_seconds() {
        let t =
            Telemetry::with_sink(Arc::new(NoopSink)).with_latency(LatencyModel::uniform(1.0, 1e9));
        let m = CommMeter::new();
        m.record_round(Link::EdgeCloud);
        let s = m.snapshot();
        let got = t.sim_seconds(&s, 0, 1);
        assert!((got - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fault_seconds_prices_slots_and_backoff() {
        let t =
            Telemetry::with_sink(Arc::new(NoopSink)).with_latency(LatencyModel::uniform(0.0, 1e9));
        // uniform() sets client_step_s = 1e-3.
        assert!((t.fault_seconds(3.0, 0.25) - (3.0 * 1e-3 + 0.25)).abs() < 1e-12);
        assert_eq!(Telemetry::disabled().fault_seconds(3.0, 0.25), 0.0);
    }

    #[test]
    fn seq_counts_sequenced_emissions_only() {
        let sink = Arc::new(MemorySink::new());
        let t = Telemetry::with_sink(sink.clone());
        assert_eq!(t.seq(), 0);
        t.record(|| ev(0));
        t.record(|| ev(1));
        assert_eq!(t.seq(), 2);
        t.record_unsequenced(|| ev(2));
        assert_eq!(t.seq(), 2, "unsequenced emission must not count");
        assert_eq!(sink.len(), 3, "but it still reaches the sink");
        t.set_seq(50);
        assert_eq!(t.seq(), 50);
        t.record(|| ev(3));
        assert_eq!(t.seq(), 51);
        // Clones share the counter; disabled handles report 0 and ignore
        // set_seq.
        assert_eq!(t.clone().seq(), 51);
        let off = Telemetry::disabled();
        off.set_seq(9);
        assert_eq!(off.seq(), 0);
    }

    #[test]
    fn sinks_are_thread_safe() {
        let sink = Arc::new(MemorySink::new());
        let t = Telemetry::with_sink(sink.clone());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let t = t.clone();
                scope.spawn(move || {
                    for k in 0..100 {
                        t.record(|| ev(k));
                    }
                });
            }
        });
        assert_eq!(sink.len(), 400);
    }
}
