//! Schema validation for telemetry streams.
//!
//! [`validate_line`] checks one JSONL line against the fixed event grammar
//! (DESIGN.md §10): known `"ev"` tag, every required field present with the
//! right type, no unknown fields. [`validate_stream`] additionally enforces
//! stream-level invariants — a `run_start` preamble, `round_end` indices
//! consecutive from 0, a closing `run_end` whose round count matches —
//! while tolerating unknown (future) event kinds as unsequenced lines;
//! [`validate_stream_strict`] rejects them. CI's telemetry smoke job runs
//! the strict form over every emitted stream.

use crate::json::{parse, Json};
use std::collections::BTreeMap;

/// Field type expected by the schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ty {
    /// JSON string.
    Str,
    /// Non-negative integer.
    UInt,
    /// Any number, or `null` (non-finite floats serialize as `null`).
    Num,
    /// Array of non-negative integers.
    ArrUInt,
    /// Array of numbers/nulls.
    ArrNum,
    /// Non-negative integer or `null` (checkpoint coordinates).
    NullableUInt,
    /// A `CommStats` object: five length-3 arrays of non-negative integers.
    Comm,
    /// A `profile_summary` phase list: array of per-phase aggregate
    /// objects (see `crate::profile::PhaseAgg`).
    Phases,
}

/// Required fields (besides `"ev"`) for each event kind.
fn fields_for(kind: &str) -> Option<&'static [(&'static str, Ty)]> {
    Some(match kind {
        "run_start" => &[
            ("algorithm", Ty::Str),
            ("rounds", Ty::UInt),
            ("n_edges", Ty::UInt),
            ("num_params", Ty::UInt),
            ("seed", Ty::UInt),
        ],
        "round_start" => &[("round", Ty::UInt)],
        "phase1" => &[
            ("round", Ty::UInt),
            ("edges", Ty::ArrUInt),
            ("c1", Ty::NullableUInt),
            ("c2", Ty::NullableUInt),
        ],
        "block_agg" => &[
            ("round", Ty::UInt),
            ("edge", Ty::UInt),
            ("t2", Ty::UInt),
            ("survivors", Ty::UInt),
        ],
        "phase1_done" => &[("round", Ty::UInt), ("elapsed_s", Ty::Num)],
        "dual_update" => &[
            ("round", Ty::UInt),
            ("edges", Ty::ArrUInt),
            ("losses", Ty::ArrNum),
            ("p", Ty::ArrNum),
            ("elapsed_s", Ty::Num),
        ],
        "eval" => &[
            ("round", Ty::UInt),
            ("average", Ty::Num),
            ("worst", Ty::Num),
            ("variance_pp", Ty::Num),
            ("per_edge_accuracy", Ty::ArrNum),
        ],
        "fault" => &[
            ("round", Ty::UInt),
            ("kind", Ty::Str),
            ("level", Ty::UInt),
            ("edge", Ty::UInt),
            ("attempts", Ty::UInt),
        ],
        "fault_summary" => &[
            ("round", Ty::UInt),
            ("crashes", Ty::UInt),
            ("outages", Ty::UInt),
            ("retries", Ty::UInt),
            ("gave_up", Ty::UInt),
            ("deadline_missed", Ty::UInt),
            ("backoff_s", Ty::Num),
            ("straggler_slots", Ty::Num),
        ],
        "checkpoint" => &[("round", Ty::UInt), ("seq", Ty::UInt)],
        "span" => &[
            ("phase", Ty::Str),
            ("round", Ty::NullableUInt),
            ("entity", Ty::NullableUInt),
            ("elapsed_s", Ty::Num),
        ],
        "profile_summary" => &[("phases", Ty::Phases)],
        "adversary" => &[
            ("round", Ty::UInt),
            ("corrupted", Ty::UInt),
            ("attack", Ty::Str),
        ],
        "quarantine" => &[
            ("round", Ty::UInt),
            ("client", Ty::UInt),
            ("until", Ty::UInt),
        ],
        "churn" => &[
            ("round", Ty::UInt),
            ("joins", Ty::UInt),
            ("leaves", Ty::UInt),
            ("edge_failures", Ty::UInt),
            ("rehomed", Ty::UInt),
        ],
        "rehome" => &[
            ("round", Ty::UInt),
            ("client", Ty::UInt),
            ("from_edge", Ty::UInt),
            ("to_edge", Ty::UInt),
        ],
        "aggregator_summary" => &[("aggregator", Ty::Str), ("param", Ty::Num)],
        "run_resume" => &[
            ("algorithm", Ty::Str),
            ("rounds", Ty::UInt),
            ("next_round", Ty::UInt),
            ("seed", Ty::UInt),
            ("seq", Ty::UInt),
        ],
        "round_end" => &[
            ("round", Ty::UInt),
            ("slots", Ty::UInt),
            ("comm_delta", Ty::Comm),
            ("comm_total", Ty::Comm),
            ("sim_s", Ty::Num),
            ("elapsed_s", Ty::Num),
        ],
        "run_end" => &[
            ("rounds", Ty::UInt),
            ("slots", Ty::UInt),
            ("comm_total", Ty::Comm),
            ("sim_s", Ty::Num),
            ("elapsed_s", Ty::Num),
        ],
        _ => return None,
    })
}

/// Why a line or stream failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaError {
    /// 1-based line number (0 for single-line validation).
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.msg)
        } else {
            write!(f, "{}", self.msg)
        }
    }
}

impl std::error::Error for SchemaError {}

fn err(msg: impl Into<String>) -> SchemaError {
    SchemaError {
        line: 0,
        msg: msg.into(),
    }
}

fn check_ty(value: &Json, ty: Ty, field: &str) -> Result<(), SchemaError> {
    let fail = |want: &str| {
        Err(err(format!(
            "field {field:?}: expected {want}, got {value:?}"
        )))
    };
    match ty {
        Ty::Str => match value {
            Json::Str(_) => Ok(()),
            _ => fail("a string"),
        },
        Ty::UInt => match value.as_u64() {
            Some(_) => Ok(()),
            None => fail("a non-negative integer"),
        },
        Ty::Num => match value {
            Json::Num(_) | Json::Null => Ok(()),
            _ => fail("a number or null"),
        },
        Ty::NullableUInt => match value {
            Json::Null => Ok(()),
            _ if value.as_u64().is_some() => Ok(()),
            _ => fail("a non-negative integer or null"),
        },
        Ty::ArrUInt => match value.as_arr() {
            Some(items) if items.iter().all(|x| x.as_u64().is_some()) => Ok(()),
            _ => fail("an array of non-negative integers"),
        },
        Ty::ArrNum => match value.as_arr() {
            Some(items) if items.iter().all(|x| matches!(x, Json::Num(_) | Json::Null)) => Ok(()),
            _ => fail("an array of numbers"),
        },
        Ty::Comm => {
            let obj = match value {
                Json::Obj(_) => value,
                _ => return fail("a comm object"),
            };
            const KEYS: [&str; 5] = ["up_floats", "down_floats", "up_msgs", "down_msgs", "rounds"];
            for key in KEYS {
                let arr = obj
                    .get(key)
                    .and_then(Json::as_arr)
                    .ok_or_else(|| err(format!("field {field:?}: comm key {key:?} missing")))?;
                if arr.len() != 3 || arr.iter().any(|x| x.as_u64().is_none()) {
                    return Err(err(format!(
                        "field {field:?}: comm key {key:?} must be 3 non-negative integers"
                    )));
                }
            }
            if let Json::Obj(fields) = obj {
                if fields.len() != KEYS.len() {
                    return Err(err(format!("field {field:?}: unknown comm keys")));
                }
            }
            Ok(())
        }
        Ty::Phases => {
            let items = match value.as_arr() {
                Some(items) => items,
                None => return fail("an array of phase aggregates"),
            };
            const KEYS: [(&str, Ty); 8] = [
                ("phase", Ty::Str),
                ("count", Ty::UInt),
                ("total_s", Ty::Num),
                ("min_s", Ty::Num),
                ("max_s", Ty::Num),
                ("p50_s", Ty::Num),
                ("p90_s", Ty::Num),
                ("p99_s", Ty::Num),
            ];
            for item in items {
                let fields = match item {
                    Json::Obj(fields) => fields,
                    _ => return fail("an array of phase aggregate objects"),
                };
                for (key, ty) in KEYS {
                    let v = item.get(key).ok_or_else(|| {
                        err(format!("field {field:?}: phase key {key:?} missing"))
                    })?;
                    check_ty(v, ty, key).map_err(|e| err(format!("field {field:?}: {}", e.msg)))?;
                }
                if fields.len() != KEYS.len() {
                    return Err(err(format!("field {field:?}: unknown phase keys")));
                }
            }
            Ok(())
        }
    }
}

/// Validate one JSONL line. Returns the event kind on success.
pub fn validate_line(line: &str) -> Result<String, SchemaError> {
    let v = parse(line).map_err(|e| err(format!("not valid JSON: {e}")))?;
    let fields = match &v {
        Json::Obj(fields) => fields,
        _ => return Err(err("not a JSON object")),
    };
    let kind = v
        .get("ev")
        .and_then(Json::as_str)
        .ok_or_else(|| err("missing string field \"ev\""))?
        .to_string();
    let spec = fields_for(&kind).ok_or_else(|| err(format!("unknown event kind {kind:?}")))?;
    for (name, ty) in spec {
        let value = v
            .get(name)
            .ok_or_else(|| err(format!("{kind}: missing field {name:?}")))?;
        check_ty(value, *ty, name).map_err(|e| err(format!("{kind}: {}", e.msg)))?;
    }
    // "ev" plus the spec'd fields — nothing else.
    if fields.len() != spec.len() + 1 {
        let known: Vec<&str> = spec.iter().map(|(n, _)| *n).collect();
        let extra: Vec<&String> = fields
            .iter()
            .map(|(k, _)| k)
            .filter(|k| k.as_str() != "ev" && !known.contains(&k.as_str()))
            .collect();
        return Err(err(format!("{kind}: unknown fields {extra:?}")));
    }
    Ok(kind)
}

/// Summary of a validated stream.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StreamSummary {
    /// Non-empty lines validated.
    pub lines: usize,
    /// Complete `run_start` … `run_end` segments.
    pub runs: usize,
    /// Event counts by kind tag.
    pub events_by_kind: BTreeMap<String, usize>,
}

/// Validate a whole JSONL stream (possibly several concatenated runs).
///
/// Every non-empty line must pass [`validate_line`]; additionally each run
/// segment must open with `run_start` (or `run_resume`, see below), close
/// with `run_end`, and have `round_end` indices consecutive from the
/// segment's starting round with a matching final count.
///
/// Crash/resume support: a `run_resume` line either *opens* a segment (a
/// resumed run's own stream, validated standalone) or *continues* an open
/// one (a spliced stream: pre-crash prefix cut at its last `checkpoint`
/// event, then the resumed suffix). In both cases continuity is enforced —
/// `next_round` must equal the rounds completed so far and `seq` must
/// equal the running event count, so a forged splice that skips or
/// repeats a round is rejected. `checkpoint` events themselves must carry
/// a `seq` matching the running count and cover the round that just
/// ended.
///
/// Version tolerance: an *unknown* event kind is accepted as long as the
/// line is a well-formed JSON object with a string `"ev"` tag. Unknown
/// kinds are counted in the summary but treated as **unsequenced** — they
/// do not advance the running event count, so sequence continuity checks
/// still hold across them. This makes new event kinds a non-breaking
/// schema change, with one emitter-side obligation: new kinds must be
/// emitted unsequenced (as `run_resume`, `span`, and `profile_summary`
/// are), otherwise older validators would flag a seq gap at the next
/// checkpoint. Use [`validate_stream_strict`] to reject unknown kinds.
pub fn validate_stream(text: &str) -> Result<StreamSummary, SchemaError> {
    validate_stream_impl(text, false)
}

/// [`validate_stream`] in strict mode: every line must additionally pass
/// [`validate_line`] — unknown event kinds are rejected instead of being
/// skipped as unsequenced. Use this to pin a stream to exactly the event
/// grammar this build knows about (CI does, via
/// `validate-telemetry --strict`).
pub fn validate_stream_strict(text: &str) -> Result<StreamSummary, SchemaError> {
    validate_stream_impl(text, true)
}

/// Accept `raw` as a tolerated unknown-kind line: a well-formed JSON
/// object whose `"ev"` is a string *not* in the known-kind table. Known
/// kinds return `None` (their field errors must surface).
fn tolerated_unknown_kind(raw: &str) -> Option<String> {
    let v = parse(raw).ok()?;
    let kind = v.get("ev")?.as_str()?.to_string();
    if fields_for(&kind).is_none() {
        Some(kind)
    } else {
        None
    }
}

fn validate_stream_impl(text: &str, strict: bool) -> Result<StreamSummary, SchemaError> {
    let mut summary = StreamSummary::default();
    let mut in_run = false;
    let mut rounds_seen = 0usize;
    // Sequenced events in the logical run so far (a resumed segment
    // inherits the count from its run_resume preamble, which — like the
    // emitter — does not count itself).
    let mut seq_count = 0u64;
    let at = |line_no: usize, msg: String| SchemaError { line: line_no, msg };

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let (kind, known) = match validate_line(raw) {
            Ok(kind) => (kind, true),
            Err(e) if !strict => match tolerated_unknown_kind(raw) {
                Some(kind) => (kind, false),
                None => return Err(at(line_no, e.msg)),
            },
            Err(e) => return Err(at(line_no, e.msg)),
        };
        summary.lines += 1;
        *summary.events_by_kind.entry(kind.clone()).or_insert(0) += 1;
        if !known {
            // Forward-compat: unknown kinds are unsequenced observers.
            continue;
        }

        match kind.as_str() {
            "run_start" => {
                if in_run {
                    return Err(at(line_no, "run_start inside an open run".into()));
                }
                in_run = true;
                rounds_seen = 0;
                seq_count = 1; // run_start counts itself
            }
            "run_resume" => {
                let v = parse(raw).expect("validated above");
                let next_round = v
                    .get("next_round")
                    .and_then(Json::as_u64)
                    .expect("validated") as usize;
                let seq = v.get("seq").and_then(Json::as_u64).expect("validated");
                if in_run {
                    // Splice point: the prefix must end exactly at the
                    // checkpoint this resume was loaded from.
                    if next_round != rounds_seen {
                        return Err(at(
                            line_no,
                            format!(
                                "run_resume next_round {next_round} but {rounds_seen} rounds completed before the splice"
                            ),
                        ));
                    }
                    if seq != seq_count {
                        return Err(at(
                            line_no,
                            format!(
                                "run_resume seq {seq} but {seq_count} events precede the splice"
                            ),
                        ));
                    }
                } else {
                    if next_round == 0 {
                        return Err(at(line_no, "run_resume with next_round 0".into()));
                    }
                    in_run = true;
                    rounds_seen = next_round;
                    seq_count = seq;
                }
                // Unsequenced either way: seq_count unchanged.
            }
            "checkpoint" => {
                if !in_run {
                    return Err(at(line_no, "checkpoint outside a run".into()));
                }
                seq_count += 1;
                let v = parse(raw).expect("validated above");
                let round = v.get("round").and_then(Json::as_u64).expect("validated") as usize;
                let seq = v.get("seq").and_then(Json::as_u64).expect("validated");
                if rounds_seen == 0 || round != rounds_seen - 1 {
                    return Err(at(
                        line_no,
                        format!(
                            "checkpoint covers round {round} but {rounds_seen} rounds completed"
                        ),
                    ));
                }
                if seq != seq_count {
                    return Err(at(
                        line_no,
                        format!("checkpoint seq {seq}, expected {seq_count}"),
                    ));
                }
            }
            "run_end" => {
                if !in_run {
                    return Err(at(line_no, "run_end without run_start".into()));
                }
                seq_count += 1;
                let v = parse(raw).expect("validated above");
                let declared = v.get("rounds").and_then(Json::as_u64).expect("validated") as usize;
                if declared != rounds_seen {
                    return Err(at(
                        line_no,
                        format!("run_end declares {declared} rounds but {rounds_seen} round_end events were seen"),
                    ));
                }
                in_run = false;
                summary.runs += 1;
            }
            "round_end" => {
                if !in_run {
                    return Err(at(line_no, "round_end outside a run".into()));
                }
                seq_count += 1;
                let v = parse(raw).expect("validated above");
                let round = v.get("round").and_then(Json::as_u64).expect("validated") as usize;
                if round != rounds_seen {
                    return Err(at(
                        line_no,
                        format!("round_end index {round}, expected {rounds_seen}"),
                    ));
                }
                rounds_seen += 1;
            }
            "span" | "profile_summary" | "adversary" | "quarantine" | "aggregator_summary"
            | "churn" | "rehome" => {
                if !in_run {
                    return Err(at(line_no, format!("{kind} outside a run")));
                }
                // Unsequenced, like run_resume: seq_count unchanged.
            }
            _ => {
                if !in_run {
                    return Err(at(line_no, format!("{kind} outside a run")));
                }
                seq_count += 1;
            }
        }
    }
    if in_run {
        return Err(err("stream ends inside an open run (no run_end)"));
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TelemetryEvent;
    use hm_simnet::CommMeter;

    fn stats() -> hm_simnet::CommStats {
        CommMeter::new().snapshot()
    }

    fn tiny_stream() -> String {
        let events = [
            TelemetryEvent::RunStart {
                algorithm: "HierMinimax".into(),
                rounds: 2,
                n_edges: 3,
                num_params: 10,
                seed: 1,
            },
            TelemetryEvent::RoundStart { round: 0 },
            TelemetryEvent::Phase1Sampled {
                round: 0,
                edges: vec![0, 2],
                checkpoint: Some((0, 1)),
            },
            TelemetryEvent::BlockAggregated {
                round: 0,
                edge: 0,
                t2: 0,
                survivors: 2,
            },
            TelemetryEvent::Phase1Done {
                round: 0,
                elapsed_s: 0.1,
            },
            TelemetryEvent::DualUpdate {
                round: 0,
                edges: vec![1],
                losses: vec![0.5],
                p: vec![0.4, 0.3, 0.3],
                elapsed_s: 0.01,
            },
            TelemetryEvent::Eval {
                round: 0,
                average: 0.8,
                worst: 0.7,
                variance_pp: 2.0,
                per_edge_accuracy: vec![0.7, 0.85, 0.85],
            },
            TelemetryEvent::Fault {
                round: 0,
                kind: "msg_gave_up".into(),
                level: 0,
                edge: 1,
                attempts: 3,
            },
            TelemetryEvent::FaultSummary {
                round: 0,
                crashes: 1,
                outages: 0,
                retries: 2,
                gave_up: 1,
                deadline_missed: 0,
                backoff_s: 0.15,
                straggler_slots: 0.0,
            },
            TelemetryEvent::RoundEnd {
                round: 0,
                slots: 4,
                comm_delta: stats(),
                comm_total: stats(),
                sim_s: 0.2,
                elapsed_s: 0.11,
            },
            TelemetryEvent::RoundStart { round: 1 },
            TelemetryEvent::RoundEnd {
                round: 1,
                slots: 8,
                comm_delta: stats(),
                comm_total: stats(),
                sim_s: 0.4,
                elapsed_s: 0.1,
            },
            TelemetryEvent::RunEnd {
                rounds: 2,
                slots: 8,
                comm_total: stats(),
                sim_s: 0.4,
                elapsed_s: 0.25,
            },
        ];
        events
            .iter()
            .map(|e| e.to_json())
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn every_emitted_event_validates() {
        for line in tiny_stream().lines() {
            validate_line(line).unwrap();
        }
    }

    #[test]
    fn stream_of_a_well_formed_run_validates() {
        let summary = validate_stream(&tiny_stream()).unwrap();
        assert_eq!(summary.runs, 1);
        assert_eq!(summary.lines, 13);
        assert_eq!(summary.events_by_kind["round_end"], 2);
        assert_eq!(summary.events_by_kind["dual_update"], 1);
        assert_eq!(summary.events_by_kind["fault"], 1);
        assert_eq!(summary.events_by_kind["fault_summary"], 1);
    }

    #[test]
    fn concatenated_runs_validate() {
        let two = format!("{}\n{}", tiny_stream(), tiny_stream());
        let summary = validate_stream(&two).unwrap();
        assert_eq!(summary.runs, 2);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let spaced = tiny_stream().replace('\n', "\n\n");
        let summary = validate_stream(&spaced).unwrap();
        assert_eq!(summary.lines, 13);
    }

    #[test]
    fn rejects_unknown_kind() {
        let e = validate_line(r#"{"ev":"mystery","round":0}"#).unwrap_err();
        assert!(e.msg.contains("unknown event kind"));
    }

    #[test]
    fn stream_tolerates_unknown_kinds_by_default() {
        let mut lines: Vec<String> = tiny_stream().lines().map(String::from).collect();
        lines.insert(3, r#"{"ev":"gpu_util","round":0,"pct":93.5}"#.into());
        let text = lines.join("\n");
        let summary = validate_stream(&text).unwrap();
        assert_eq!(summary.runs, 1);
        assert_eq!(summary.events_by_kind["gpu_util"], 1);
        assert_eq!(summary.lines, 14);
    }

    #[test]
    fn strict_stream_rejects_unknown_kinds() {
        let mut lines: Vec<String> = tiny_stream().lines().map(String::from).collect();
        lines.insert(3, r#"{"ev":"gpu_util","round":0,"pct":93.5}"#.into());
        let e = validate_stream_strict(&lines.join("\n")).unwrap_err();
        assert!(e.msg.contains("unknown event kind"), "{}", e.msg);
        assert_eq!(e.line, 4);
    }

    #[test]
    fn tolerant_stream_still_rejects_malformed_lines() {
        // Bad JSON is never tolerated.
        let e = validate_stream("{\"ev\":\"future").unwrap_err();
        assert!(e.msg.contains("not valid JSON"), "{}", e.msg);
        // Nor is a missing/non-string "ev" tag.
        let e = validate_stream(r#"{"round":0}"#).unwrap_err();
        assert!(e.msg.contains("\"ev\""), "{}", e.msg);
        // Nor a *known* kind with a field error — tolerance is only for
        // kinds this build has never heard of.
        let stream = tiny_stream().replace(
            "\"ev\":\"round_start\",\"round\":0",
            "\"ev\":\"round_start\",\"round\":\"zero\"",
        );
        let e = validate_stream(&stream).unwrap_err();
        assert!(e.msg.contains("non-negative integer"), "{}", e.msg);
    }

    #[test]
    fn unknown_kinds_do_not_break_seq_continuity() {
        // Insert an unknown event *before* the checkpoint: the checkpoint's
        // seq must still match, i.e. the unknown line counted as
        // unsequenced.
        let mut lines: Vec<String> = checkpointed_stream().lines().map(String::from).collect();
        lines.insert(9, r#"{"ev":"gpu_util","pct":50}"#.into());
        let summary = validate_stream(&lines.join("\n")).unwrap();
        assert_eq!(summary.runs, 1);
        assert_eq!(summary.events_by_kind["checkpoint"], 1);
    }

    #[test]
    fn span_and_profile_summary_are_unsequenced() {
        // Same continuity argument for the known unsequenced kinds: spans
        // before a checkpoint must not perturb its expected seq.
        let span = TelemetryEvent::Span {
            phase: "round".into(),
            round: Some(0),
            entity: None,
            elapsed_s: 0.125,
        };
        let summary = TelemetryEvent::ProfileSummary {
            phases: vec![crate::profile::PhaseAgg {
                phase: "round".into(),
                count: 1,
                total_s: 0.125,
                min_s: 0.125,
                max_s: 0.125,
                p50_s: 0.125,
                p90_s: 0.125,
                p99_s: 0.125,
            }],
        };
        let mut lines: Vec<String> = checkpointed_stream().lines().map(String::from).collect();
        lines.insert(9, span.to_json());
        let end = lines.len() - 1;
        lines.insert(end, summary.to_json());
        let text = lines.join("\n");
        for validate in [validate_stream, validate_stream_strict] {
            let s = validate(&text).unwrap();
            assert_eq!(s.runs, 1);
            assert_eq!(s.events_by_kind["span"], 1);
            assert_eq!(s.events_by_kind["profile_summary"], 1);
        }
    }

    #[test]
    fn adversary_kinds_are_unsequenced() {
        // The Byzantine events must not perturb checkpoint seq values —
        // same continuity argument as spans, in both validators.
        let adversary = TelemetryEvent::Adversary {
            round: 0,
            corrupted: 3,
            attack: "sign-flip".into(),
        };
        let quarantine = TelemetryEvent::Quarantine {
            round: 0,
            client: 2,
            until: 5,
        };
        let agg = TelemetryEvent::AggregatorSummary {
            aggregator: "trimmed-mean".into(),
            param: 0.2,
        };
        let mut lines: Vec<String> = checkpointed_stream().lines().map(String::from).collect();
        lines.insert(9, adversary.to_json());
        lines.insert(10, quarantine.to_json());
        lines.insert(1, agg.to_json());
        let text = lines.join("\n");
        for validate in [validate_stream, validate_stream_strict] {
            let s = validate(&text).unwrap();
            assert_eq!(s.runs, 1);
            assert_eq!(s.events_by_kind["adversary"], 1);
            assert_eq!(s.events_by_kind["quarantine"], 1);
            assert_eq!(s.events_by_kind["aggregator_summary"], 1);
        }
    }

    #[test]
    fn churn_kinds_are_unsequenced() {
        // Churn/rehome must not perturb checkpoint seq values — the same
        // continuity argument as spans and adversary events, so churn-off
        // streams keep their historical sequence numbers.
        let churn = TelemetryEvent::Churn {
            round: 0,
            joins: 1,
            leaves: 0,
            edge_failures: 1,
            rehomed: 2,
        };
        let rehome = TelemetryEvent::Rehome {
            round: 0,
            client: 4,
            from_edge: 1,
            to_edge: 0,
        };
        let mut lines: Vec<String> = checkpointed_stream().lines().map(String::from).collect();
        lines.insert(9, churn.to_json());
        lines.insert(10, rehome.to_json());
        let text = lines.join("\n");
        for validate in [validate_stream, validate_stream_strict] {
            let s = validate(&text).unwrap();
            assert_eq!(s.runs, 1);
            assert_eq!(s.events_by_kind["churn"], 1);
            assert_eq!(s.events_by_kind["rehome"], 1);
        }
    }

    #[test]
    fn span_outside_a_run_is_rejected() {
        let line = TelemetryEvent::Span {
            phase: "round".into(),
            round: None,
            entity: None,
            elapsed_s: 0.0,
        }
        .to_json();
        let e = validate_stream(&line).unwrap_err();
        assert!(e.msg.contains("outside a run"), "{}", e.msg);
    }

    #[test]
    fn rejects_malformed_phase_aggregates() {
        let missing = r#"{"ev":"profile_summary","phases":[{"phase":"round"}]}"#;
        let e = validate_line(missing).unwrap_err();
        assert!(e.msg.contains("phase key"), "{}", e.msg);
        let extra = r#"{"ev":"profile_summary","phases":[{"phase":"round","count":1,"total_s":1,"min_s":1,"max_s":1,"p50_s":1,"p90_s":1,"p99_s":1,"zz":0}]}"#;
        let e = validate_line(extra).unwrap_err();
        assert!(e.msg.contains("unknown phase keys"), "{}", e.msg);
        let not_obj = r#"{"ev":"profile_summary","phases":[3]}"#;
        assert!(validate_line(not_obj).is_err());
    }

    #[test]
    fn rejects_missing_field() {
        let e = validate_line(r#"{"ev":"round_start"}"#).unwrap_err();
        assert!(e.msg.contains("missing field"));
    }

    #[test]
    fn rejects_wrong_type() {
        let e = validate_line(r#"{"ev":"round_start","round":"zero"}"#).unwrap_err();
        assert!(e.msg.contains("expected a non-negative integer"));
    }

    #[test]
    fn rejects_unknown_field() {
        let e = validate_line(r#"{"ev":"round_start","round":0,"extra":1}"#).unwrap_err();
        assert!(e.msg.contains("unknown fields"));
    }

    #[test]
    fn rejects_negative_round() {
        let e = validate_line(r#"{"ev":"round_start","round":-1}"#).unwrap_err();
        assert!(e.msg.contains("non-negative"));
    }

    #[test]
    fn rejects_malformed_comm_object() {
        let line = r#"{"ev":"run_end","rounds":0,"slots":0,"comm_total":{"up_floats":[0,0]},"sim_s":0,"elapsed_s":0}"#;
        let e = validate_line(line).unwrap_err();
        assert!(e.msg.contains("comm key"), "{}", e.msg);
    }

    #[test]
    fn stream_rejects_out_of_order_rounds() {
        let stream = tiny_stream().replace(
            "\"ev\":\"round_end\",\"round\":1",
            "\"ev\":\"round_end\",\"round\":5",
        );
        let e = validate_stream(&stream).unwrap_err();
        assert!(e.msg.contains("expected 1"), "{}", e.msg);
        assert!(e.line > 0);
    }

    #[test]
    fn stream_rejects_round_count_mismatch() {
        let stream = tiny_stream().replace(
            "\"ev\":\"run_end\",\"rounds\":2",
            "\"ev\":\"run_end\",\"rounds\":3",
        );
        let e = validate_stream(&stream).unwrap_err();
        assert!(e.msg.contains("declares 3 rounds"), "{}", e.msg);
    }

    /// `tiny_stream` with a `checkpoint` inserted after round 0's
    /// `round_end` (which is the stream's 10th event, so the checkpoint is
    /// the 11th).
    fn checkpointed_stream() -> String {
        let mut lines: Vec<String> = tiny_stream().lines().map(String::from).collect();
        let ckpt = TelemetryEvent::Checkpoint { round: 0, seq: 11 };
        lines.insert(10, ckpt.to_json());
        lines.join("\n")
    }

    /// The suffix a run resumed from that checkpoint emits: an unsequenced
    /// `run_resume`, then round 1 and the closing `run_end`.
    fn resumed_suffix() -> String {
        let mut lines = vec![TelemetryEvent::RunResume {
            algorithm: "HierMinimax".into(),
            rounds: 2,
            next_round: 1,
            seed: 1,
            seq: 11,
        }
        .to_json()];
        // Rounds 1.. of tiny_stream (events 11..13).
        lines.extend(tiny_stream().lines().skip(10).map(String::from));
        lines.join("\n")
    }

    #[test]
    fn stream_with_checkpoints_validates() {
        let summary = validate_stream(&checkpointed_stream()).unwrap();
        assert_eq!(summary.runs, 1);
        assert_eq!(summary.events_by_kind["checkpoint"], 1);
    }

    #[test]
    fn stream_rejects_checkpoint_with_wrong_seq() {
        let stream = checkpointed_stream().replace("\"seq\":11", "\"seq\":12");
        let e = validate_stream(&stream).unwrap_err();
        assert!(
            e.msg.contains("checkpoint seq 12, expected 11"),
            "{}",
            e.msg
        );
    }

    #[test]
    fn stream_rejects_checkpoint_for_wrong_round() {
        let stream = checkpointed_stream().replace(
            "{\"ev\":\"checkpoint\",\"round\":0",
            "{\"ev\":\"checkpoint\",\"round\":1",
        );
        let e = validate_stream(&stream).unwrap_err();
        assert!(e.msg.contains("checkpoint covers round 1"), "{}", e.msg);
    }

    #[test]
    fn resumed_stream_validates_standalone() {
        let summary = validate_stream(&resumed_suffix()).unwrap();
        assert_eq!(summary.runs, 1);
        assert_eq!(summary.events_by_kind["run_resume"], 1);
    }

    #[test]
    fn spliced_stream_validates() {
        // Prefix cut right after the checkpoint + resumed suffix.
        let prefix = checkpointed_stream()
            .lines()
            .take(11)
            .collect::<Vec<_>>()
            .join("\n");
        let spliced = format!("{prefix}\n{}", resumed_suffix());
        let summary = validate_stream(&spliced).unwrap();
        assert_eq!(summary.runs, 1);
        assert_eq!(summary.events_by_kind["round_end"], 2);
    }

    #[test]
    fn forged_splice_round_skip_is_rejected() {
        let prefix = checkpointed_stream()
            .lines()
            .take(11)
            .collect::<Vec<_>>()
            .join("\n");
        let forged = resumed_suffix().replace("\"next_round\":1", "\"next_round\":2");
        let e = validate_stream(&format!("{prefix}\n{forged}")).unwrap_err();
        assert!(e.msg.contains("run_resume next_round 2"), "{}", e.msg);
    }

    #[test]
    fn forged_splice_seq_gap_is_rejected() {
        let prefix = checkpointed_stream()
            .lines()
            .take(11)
            .collect::<Vec<_>>()
            .join("\n");
        let forged = resumed_suffix().replace("\"seq\":11", "\"seq\":13");
        let e = validate_stream(&format!("{prefix}\n{forged}")).unwrap_err();
        assert!(e.msg.contains("run_resume seq 13"), "{}", e.msg);
    }

    #[test]
    fn standalone_resume_from_round_zero_is_rejected() {
        let bogus = resumed_suffix().replace("\"next_round\":1", "\"next_round\":0");
        // next_round 0 makes no sense standalone (nothing was completed)
        // and mismatches the suffix rounds anyway.
        let e = validate_stream(&bogus).unwrap_err();
        assert!(e.msg.contains("next_round 0"), "{}", e.msg);
    }

    #[test]
    fn stream_rejects_events_outside_a_run() {
        let e = validate_stream(r#"{"ev":"round_start","round":0}"#).unwrap_err();
        assert!(e.msg.contains("outside a run"));
    }

    #[test]
    fn stream_rejects_unclosed_run() {
        let open = tiny_stream();
        let open = open.rsplit_once('\n').unwrap().0;
        let e = validate_stream(open).unwrap_err();
        assert!(e.msg.contains("no run_end"));
    }
}
