//! Structured run telemetry.
//!
//! The paper's whole evaluation argument (Figs. 3–5, Table 2) is a
//! *trajectory* story — loss, worst-edge accuracy, communication cost, and
//! the dual weights `p^(k)` over rounds — yet end-of-run numbers alone
//! cannot tell you why a seed diverged or where a round's wall-clock went.
//! This crate is the observability layer: algorithms emit structured
//! [`TelemetryEvent`]s through a [`Telemetry`] handle into a pluggable
//! [`Sink`], one JSON object per line when written to disk.
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when off.** A disabled handle is a `None`; every
//!    `record` call is one branch and the event payload is never built
//!    (closure form, like `hm_simnet::trace::Trace`). Timers started on a
//!    disabled handle never call `Instant::now`. The training hot path
//!    (`local_sgd`) is not instrumented at all — telemetry observes round
//!    boundaries, where the run already synchronises.
//! 2. **No new dependencies.** The JSONL writer and the validating parser
//!    in [`json`]/[`schema`] are hand-rolled; the event grammar is small
//!    and fixed, so a serde dependency would buy nothing.
//! 3. **Deterministic payloads.** Everything except the `elapsed_s` wall
//!    -clock fields is a pure function of the run; enabling telemetry must
//!    not (and does not — asserted by the workspace determinism tests)
//!    change a single trained bit.
//!
//! The event schema is documented in `DESIGN.md` §10 and enforced by
//! [`schema::validate_stream`], which CI runs on every smoke-test stream.
//! Per-phase wall-clock profiling (span timers, fixed-bucket histograms,
//! the `span`/`profile_summary` events) lives in [`profile`] and is
//! documented in `DESIGN.md` §13.

pub mod event;
pub mod json;
pub mod profile;
pub mod schema;
pub mod sink;

pub use event::{comm_to_json, TelemetryEvent};
pub use profile::{Phase, PhaseAgg, Profiler, SpanAggregator, SpanTimer};
pub use schema::{
    validate_line, validate_stream, validate_stream_strict, SchemaError, StreamSummary,
};
pub use sink::{JsonlSink, MemorySink, NoopSink, PhaseTimer, Sink, Telemetry};
