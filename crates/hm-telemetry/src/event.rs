//! Telemetry event types and their JSONL serialization.
//!
//! One event = one JSON object = one line. Every object carries an `"ev"`
//! kind tag; the rest of the fields are fixed per kind and documented in
//! DESIGN.md §10. Serialization is deterministic (fixed key order), so
//! streams can be compared textually in tests.

use crate::json::ObjWriter;
use crate::profile::{phases_to_json, PhaseAgg};
use hm_simnet::{CommStats, Link};

/// A structured event emitted by an algorithm run.
///
/// All payloads except the `elapsed_s` wall-clock fields are pure functions
/// of the run (deterministic under a fixed seed). Vectors are cloned at
/// emission time — emission happens at round boundaries, never inside the
/// allocation-free training hot path.
#[derive(Debug, Clone, PartialEq)]
pub enum TelemetryEvent {
    /// Run preamble: which algorithm, over what problem, with what seed.
    RunStart {
        /// Algorithm display name (e.g. `"HierMinimax"`).
        algorithm: String,
        /// Planned number of rounds.
        rounds: usize,
        /// Number of edges (groups for flat methods).
        n_edges: usize,
        /// Model parameter count.
        num_params: usize,
        /// Run seed.
        seed: u64,
    },
    /// A round began.
    RoundStart {
        /// Round index, 0-based.
        round: usize,
    },
    /// Phase-1 sampling outcome: the participating edge multiset and, for
    /// checkpoint-based methods, the sampled checkpoint `(c1, c2)`.
    Phase1Sampled {
        /// Round index.
        round: usize,
        /// Sampled edge indices (with multiplicity, in draw order). For
        /// flat methods this is the sampled client/group set.
        edges: Vec<usize>,
        /// Sampled checkpoint `(c1, c2)`; `None` for methods without one.
        checkpoint: Option<(usize, usize)>,
    },
    /// One client-edge aggregation block completed.
    BlockAggregated {
        /// Round index (for `MultiLevel`: a position tag, see DESIGN §10).
        round: usize,
        /// Edge that aggregated.
        edge: usize,
        /// Block index `t2` within the round, 0-based.
        t2: usize,
        /// Clients that survived dropout and contributed.
        survivors: usize,
    },
    /// Phase 1 (primal work) of a round finished.
    Phase1Done {
        /// Round index.
        round: usize,
        /// Real elapsed seconds of phase 1 (monotonic clock; `0.0` when the
        /// handle is disabled).
        elapsed_s: f64,
    },
    /// Phase-2 dual update: loss estimates on the uniform set and the new
    /// weight vector `p^(k+1)`.
    DualUpdate {
        /// Round index.
        round: usize,
        /// The uniformly sampled edge set `U^(k)`.
        edges: Vec<usize>,
        /// Loss estimates for each sampled edge, aligned with `edges`.
        losses: Vec<f64>,
        /// Post-projection weights `p^(k+1)` over all edges.
        p: Vec<f32>,
        /// Real elapsed seconds of phase 2.
        elapsed_s: f64,
    },
    /// An evaluation snapshot was taken.
    Eval {
        /// Round index.
        round: usize,
        /// Average accuracy over edges.
        average: f64,
        /// Worst edge accuracy.
        worst: f64,
        /// Accuracy variance in percentage points.
        variance_pp: f64,
        /// Per-edge accuracies.
        per_edge_accuracy: Vec<f64>,
    },
    /// An injected edge-level fault took effect at a cloud-link protocol
    /// step (outage, retried delivery, exhausted retries). Client-level
    /// faults (crashes, deadline misses) are high-volume and appear only
    /// aggregated in [`TelemetryEvent::FaultSummary`].
    Fault {
        /// Round index.
        round: usize,
        /// Fault class tag (`hm_simnet::FaultKind::as_str`).
        kind: String,
        /// Hierarchy level of the faulted entity (0 = cloud's children).
        level: usize,
        /// Edge (or top-level group) id.
        edge: usize,
        /// Delivery attempts made (0 for outages).
        attempts: usize,
    },
    /// Per-round fault bookkeeping deltas (emitted once per round by runs
    /// with an active fault plan, before `round_end`).
    FaultSummary {
        /// Round index.
        round: usize,
        /// Client-crash events this round.
        crashes: u64,
        /// Edge-outage observations this round.
        outages: u64,
        /// Message retransmissions this round.
        retries: u64,
        /// Messages abandoned after exhausting retries this round.
        gave_up: u64,
        /// Clients cut by the straggler deadline this round.
        deadline_missed: u64,
        /// Simulated seconds of retry backoff this round.
        backoff_s: f64,
        /// Extra time slots waiting for in-deadline stragglers this round.
        straggler_slots: f64,
    },
    /// Per-round Byzantine-adversary bookkeeping delta (emitted once per
    /// round by runs with a non-zero corruption rate, before
    /// `fault_summary`/`round_end`). Emitted *unsequenced*, like
    /// [`TelemetryEvent::Span`], so adversary-off streams keep their
    /// historical sequence numbers.
    Adversary {
        /// Round index.
        round: usize,
        /// Corrupted uploads this round.
        corrupted: u64,
        /// Attack model tag (`hm_simnet::AttackModel::as_str`).
        attack: String,
    },
    /// A client was quarantined by the update-norm outlier pass. Emitted
    /// *unsequenced*.
    Quarantine {
        /// Round whose observations triggered the bench.
        round: usize,
        /// Global client id.
        client: usize,
        /// First round the client may participate again.
        until: usize,
    },
    /// Per-round membership-churn accounting delta (emitted once per
    /// round, at round start, by runs with an active churn plan).
    /// Emitted *unsequenced*, like [`TelemetryEvent::Adversary`], so
    /// churn-off streams keep their historical sequence numbers.
    Churn {
        /// Round index.
        round: usize,
        /// Clients that joined this round.
        joins: u64,
        /// Clients that permanently left this round.
        leaves: u64,
        /// Edge servers that failed permanently this round.
        edge_failures: u64,
        /// Clients re-homed off a failed edge this round.
        rehomed: u64,
    },
    /// A client was re-homed from a failed edge onto a survivor.
    /// Emitted *unsequenced*, one event per move, in assignment order.
    Rehome {
        /// Round index.
        round: usize,
        /// Global client id.
        client: usize,
        /// The failed edge the client was homed at.
        from_edge: usize,
        /// The surviving edge that absorbed the client.
        to_edge: usize,
    },
    /// Which client→edge aggregation rule the run used (emitted once,
    /// *unsequenced*, right after the preamble, and only when the rule is
    /// not the default `mean`).
    AggregatorSummary {
        /// Aggregator tag (`hm_tensor::Aggregator::as_str`).
        aggregator: String,
        /// The rule's knob (`beta` / `tau`), `0.0` when it has none.
        param: f64,
    },
    /// A round finished.
    RoundEnd {
        /// Round index.
        round: usize,
        /// Cumulative local-SGD time slots through this round.
        slots: usize,
        /// Communication in this round alone.
        comm_delta: CommStats,
        /// Cumulative communication through this round.
        comm_total: CommStats,
        /// `LatencyModel` simulated seconds for the run prefix.
        sim_s: f64,
        /// Real elapsed seconds of this round.
        elapsed_s: f64,
    },
    /// A crash-consistent snapshot was written after a round completed.
    ///
    /// `seq` is the number of telemetry events emitted by this run *up to
    /// and including this event* — the same value stored in the snapshot —
    /// so a validator can check sequence continuity across a crash/resume
    /// splice point.
    Checkpoint {
        /// Round index (0-based) the snapshot covers through.
        round: usize,
        /// Events emitted so far, including this one.
        seq: u64,
    },
    /// Preamble of a run resumed from a snapshot, in place of
    /// [`TelemetryEvent::RunStart`]. Emitted *unsequenced* (it does not
    /// advance the event counter), so the seq values of later `checkpoint`
    /// events are bit-identical to the uninterrupted run's.
    RunResume {
        /// Algorithm display name.
        algorithm: String,
        /// Planned number of rounds (total, not remaining).
        rounds: usize,
        /// First round this resumed run executes.
        next_round: usize,
        /// Run seed.
        seed: u64,
        /// Event count inherited from the snapshot (the writing run's
        /// count through its `checkpoint` event).
        seq: u64,
    },
    /// A profiled wall-clock span (see `crate::profile`). Emitted
    /// *unsequenced*, like [`TelemetryEvent::RunResume`]: spans are pure
    /// measurement, so a profiled run's sequenced stream stays
    /// bit-identical to the unprofiled run's.
    Span {
        /// Phase tag (`crate::profile::Phase::as_str`).
        phase: String,
        /// Round the span belongs to; `None` for run-scoped spans.
        round: Option<usize>,
        /// Entity (edge index) the span belongs to, when per-entity.
        entity: Option<usize>,
        /// Measured wall-clock seconds (monotonic).
        elapsed_s: f64,
    },
    /// End-of-run per-phase aggregate of every recorded span, emitted
    /// *unsequenced* immediately before [`TelemetryEvent::RunEnd`].
    ProfileSummary {
        /// One aggregate per phase, in canonical phase order.
        phases: Vec<PhaseAgg>,
    },
    /// The run finished.
    RunEnd {
        /// Rounds actually executed.
        rounds: usize,
        /// Total local-SGD time slots.
        slots: usize,
        /// Final communication totals.
        comm_total: CommStats,
        /// `LatencyModel` simulated seconds for the whole run.
        sim_s: f64,
        /// Real elapsed seconds of the whole run.
        elapsed_s: f64,
    },
}

/// Canonical JSON form of a [`CommStats`] snapshot: five length-3 arrays in
/// [`Link::all`] order (`[client_edge, edge_cloud, client_cloud]`).
///
/// Public so tests can compare snapshots from a telemetry stream against
/// live meter snapshots without `CommStats` being constructible.
pub fn comm_to_json(s: &CommStats) -> String {
    let per_link = |f: &dyn Fn(Link) -> u64| -> [u64; 3] {
        let [a, b, c] = Link::all();
        [f(a), f(b), f(c)]
    };
    let mut w = ObjWriter::new();
    w.arr_u64("up_floats", &per_link(&|l| s.uplink_floats(l)))
        .arr_u64("down_floats", &per_link(&|l| s.downlink_floats(l)))
        .arr_u64("up_msgs", &per_link(&|l| s.uplink_msgs(l)))
        .arr_u64("down_msgs", &per_link(&|l| s.downlink_msgs(l)))
        .arr_u64("rounds", &per_link(&|l| s.rounds(l)));
    w.finish()
}

impl TelemetryEvent {
    /// The `"ev"` kind tag this event serializes under.
    pub fn kind(&self) -> &'static str {
        match self {
            TelemetryEvent::RunStart { .. } => "run_start",
            TelemetryEvent::RoundStart { .. } => "round_start",
            TelemetryEvent::Phase1Sampled { .. } => "phase1",
            TelemetryEvent::BlockAggregated { .. } => "block_agg",
            TelemetryEvent::Phase1Done { .. } => "phase1_done",
            TelemetryEvent::DualUpdate { .. } => "dual_update",
            TelemetryEvent::Eval { .. } => "eval",
            TelemetryEvent::Fault { .. } => "fault",
            TelemetryEvent::FaultSummary { .. } => "fault_summary",
            TelemetryEvent::Checkpoint { .. } => "checkpoint",
            TelemetryEvent::RunResume { .. } => "run_resume",
            TelemetryEvent::Span { .. } => "span",
            TelemetryEvent::ProfileSummary { .. } => "profile_summary",
            TelemetryEvent::Adversary { .. } => "adversary",
            TelemetryEvent::Quarantine { .. } => "quarantine",
            TelemetryEvent::Churn { .. } => "churn",
            TelemetryEvent::Rehome { .. } => "rehome",
            TelemetryEvent::AggregatorSummary { .. } => "aggregator_summary",
            TelemetryEvent::RoundEnd { .. } => "round_end",
            TelemetryEvent::RunEnd { .. } => "run_end",
        }
    }

    /// Serialize to a single JSON object (one JSONL line, no trailing
    /// newline). Key order is fixed, so equal events serialize equally.
    pub fn to_json(&self) -> String {
        let mut w = ObjWriter::new();
        w.str("ev", self.kind());
        match self {
            TelemetryEvent::RunStart {
                algorithm,
                rounds,
                n_edges,
                num_params,
                seed,
            } => {
                w.str("algorithm", algorithm)
                    .usize("rounds", *rounds)
                    .usize("n_edges", *n_edges)
                    .usize("num_params", *num_params)
                    .u64("seed", *seed);
            }
            TelemetryEvent::RoundStart { round } => {
                w.usize("round", *round);
            }
            TelemetryEvent::Phase1Sampled {
                round,
                edges,
                checkpoint,
            } => {
                w.usize("round", *round).arr_usize("edges", edges);
                match checkpoint {
                    Some((c1, c2)) => {
                        w.usize("c1", *c1).usize("c2", *c2);
                    }
                    None => {
                        w.null("c1").null("c2");
                    }
                }
            }
            TelemetryEvent::BlockAggregated {
                round,
                edge,
                t2,
                survivors,
            } => {
                w.usize("round", *round)
                    .usize("edge", *edge)
                    .usize("t2", *t2)
                    .usize("survivors", *survivors);
            }
            TelemetryEvent::Phase1Done { round, elapsed_s } => {
                w.usize("round", *round).f64("elapsed_s", *elapsed_s);
            }
            TelemetryEvent::DualUpdate {
                round,
                edges,
                losses,
                p,
                elapsed_s,
            } => {
                w.usize("round", *round)
                    .arr_usize("edges", edges)
                    .arr_f64("losses", losses)
                    .arr_f32("p", p)
                    .f64("elapsed_s", *elapsed_s);
            }
            TelemetryEvent::Eval {
                round,
                average,
                worst,
                variance_pp,
                per_edge_accuracy,
            } => {
                w.usize("round", *round)
                    .f64("average", *average)
                    .f64("worst", *worst)
                    .f64("variance_pp", *variance_pp)
                    .arr_f64("per_edge_accuracy", per_edge_accuracy);
            }
            TelemetryEvent::Fault {
                round,
                kind,
                level,
                edge,
                attempts,
            } => {
                w.usize("round", *round)
                    .str("kind", kind)
                    .usize("level", *level)
                    .usize("edge", *edge)
                    .usize("attempts", *attempts);
            }
            TelemetryEvent::FaultSummary {
                round,
                crashes,
                outages,
                retries,
                gave_up,
                deadline_missed,
                backoff_s,
                straggler_slots,
            } => {
                w.usize("round", *round)
                    .u64("crashes", *crashes)
                    .u64("outages", *outages)
                    .u64("retries", *retries)
                    .u64("gave_up", *gave_up)
                    .u64("deadline_missed", *deadline_missed)
                    .f64("backoff_s", *backoff_s)
                    .f64("straggler_slots", *straggler_slots);
            }
            TelemetryEvent::Checkpoint { round, seq } => {
                w.usize("round", *round).u64("seq", *seq);
            }
            TelemetryEvent::RunResume {
                algorithm,
                rounds,
                next_round,
                seed,
                seq,
            } => {
                w.str("algorithm", algorithm)
                    .usize("rounds", *rounds)
                    .usize("next_round", *next_round)
                    .u64("seed", *seed)
                    .u64("seq", *seq);
            }
            TelemetryEvent::Span {
                phase,
                round,
                entity,
                elapsed_s,
            } => {
                w.str("phase", phase);
                match round {
                    Some(r) => w.usize("round", *r),
                    None => w.null("round"),
                };
                match entity {
                    Some(e) => w.usize("entity", *e),
                    None => w.null("entity"),
                };
                w.f64("elapsed_s", *elapsed_s);
            }
            TelemetryEvent::ProfileSummary { phases } => {
                w.raw("phases", &phases_to_json(phases));
            }
            TelemetryEvent::Adversary {
                round,
                corrupted,
                attack,
            } => {
                w.usize("round", *round)
                    .u64("corrupted", *corrupted)
                    .str("attack", attack);
            }
            TelemetryEvent::Quarantine {
                round,
                client,
                until,
            } => {
                w.usize("round", *round)
                    .usize("client", *client)
                    .usize("until", *until);
            }
            TelemetryEvent::Churn {
                round,
                joins,
                leaves,
                edge_failures,
                rehomed,
            } => {
                w.usize("round", *round)
                    .u64("joins", *joins)
                    .u64("leaves", *leaves)
                    .u64("edge_failures", *edge_failures)
                    .u64("rehomed", *rehomed);
            }
            TelemetryEvent::Rehome {
                round,
                client,
                from_edge,
                to_edge,
            } => {
                w.usize("round", *round)
                    .usize("client", *client)
                    .usize("from_edge", *from_edge)
                    .usize("to_edge", *to_edge);
            }
            TelemetryEvent::AggregatorSummary { aggregator, param } => {
                w.str("aggregator", aggregator).f64("param", *param);
            }
            TelemetryEvent::RoundEnd {
                round,
                slots,
                comm_delta,
                comm_total,
                sim_s,
                elapsed_s,
            } => {
                w.usize("round", *round)
                    .usize("slots", *slots)
                    .raw("comm_delta", &comm_to_json(comm_delta))
                    .raw("comm_total", &comm_to_json(comm_total))
                    .f64("sim_s", *sim_s)
                    .f64("elapsed_s", *elapsed_s);
            }
            TelemetryEvent::RunEnd {
                rounds,
                slots,
                comm_total,
                sim_s,
                elapsed_s,
            } => {
                w.usize("rounds", *rounds)
                    .usize("slots", *slots)
                    .raw("comm_total", &comm_to_json(comm_total))
                    .f64("sim_s", *sim_s)
                    .f64("elapsed_s", *elapsed_s);
            }
        }
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use hm_simnet::CommMeter;

    fn sample_stats() -> CommStats {
        let m = CommMeter::new();
        m.record_gather(Link::ClientEdge, 10, 4);
        m.record_broadcast(Link::EdgeCloud, 100, 2);
        m.record_round(Link::EdgeCloud);
        m.snapshot()
    }

    #[test]
    fn comm_json_matches_getters() {
        let s = sample_stats();
        let v = parse(&comm_to_json(&s)).unwrap();
        for (i, link) in Link::all().into_iter().enumerate() {
            let at = |key: &str| v.get(key).unwrap().as_arr().unwrap()[i].as_u64().unwrap();
            assert_eq!(at("up_floats"), s.uplink_floats(link));
            assert_eq!(at("down_floats"), s.downlink_floats(link));
            assert_eq!(at("up_msgs"), s.uplink_msgs(link));
            assert_eq!(at("down_msgs"), s.downlink_msgs(link));
            assert_eq!(at("rounds"), s.rounds(link));
        }
    }

    #[test]
    fn every_kind_serializes_with_its_tag() {
        let s = sample_stats();
        let events = [
            TelemetryEvent::RunStart {
                algorithm: "HierMinimax".into(),
                rounds: 5,
                n_edges: 3,
                num_params: 77,
                seed: 42,
            },
            TelemetryEvent::RoundStart { round: 0 },
            TelemetryEvent::Phase1Sampled {
                round: 0,
                edges: vec![2, 0, 2],
                checkpoint: Some((1, 0)),
            },
            TelemetryEvent::BlockAggregated {
                round: 0,
                edge: 2,
                t2: 1,
                survivors: 4,
            },
            TelemetryEvent::Phase1Done {
                round: 0,
                elapsed_s: 0.01,
            },
            TelemetryEvent::DualUpdate {
                round: 0,
                edges: vec![1],
                losses: vec![0.7],
                p: vec![0.5, 0.25, 0.25],
                elapsed_s: 0.002,
            },
            TelemetryEvent::Eval {
                round: 0,
                average: 0.9,
                worst: 0.8,
                variance_pp: 1.5,
                per_edge_accuracy: vec![0.8, 0.95, 0.95],
            },
            TelemetryEvent::Fault {
                round: 0,
                kind: "edge_outage".into(),
                level: 0,
                edge: 2,
                attempts: 0,
            },
            TelemetryEvent::FaultSummary {
                round: 0,
                crashes: 3,
                outages: 1,
                retries: 2,
                gave_up: 0,
                deadline_missed: 1,
                backoff_s: 0.3,
                straggler_slots: 1.5,
            },
            TelemetryEvent::Checkpoint { round: 0, seq: 11 },
            TelemetryEvent::RunResume {
                algorithm: "HierMinimax".into(),
                rounds: 5,
                next_round: 1,
                seed: 42,
                seq: 11,
            },
            TelemetryEvent::Span {
                phase: "local_sgd_chain".into(),
                round: Some(0),
                entity: Some(2),
                elapsed_s: 0.003,
            },
            TelemetryEvent::ProfileSummary {
                phases: vec![PhaseAgg {
                    phase: "round".into(),
                    count: 1,
                    total_s: 0.02,
                    min_s: 0.02,
                    max_s: 0.02,
                    p50_s: 0.02,
                    p90_s: 0.02,
                    p99_s: 0.02,
                }],
            },
            TelemetryEvent::Adversary {
                round: 0,
                corrupted: 5,
                attack: "sign-flip".into(),
            },
            TelemetryEvent::Quarantine {
                round: 0,
                client: 7,
                until: 4,
            },
            TelemetryEvent::Churn {
                round: 0,
                joins: 2,
                leaves: 1,
                edge_failures: 1,
                rehomed: 3,
            },
            TelemetryEvent::Rehome {
                round: 0,
                client: 5,
                from_edge: 1,
                to_edge: 2,
            },
            TelemetryEvent::AggregatorSummary {
                aggregator: "trimmed-mean".into(),
                param: 0.2,
            },
            TelemetryEvent::RoundEnd {
                round: 0,
                slots: 6,
                comm_delta: s,
                comm_total: s,
                sim_s: 0.4,
                elapsed_s: 0.02,
            },
            TelemetryEvent::RunEnd {
                rounds: 1,
                slots: 6,
                comm_total: s,
                sim_s: 0.4,
                elapsed_s: 0.02,
            },
        ];
        for e in &events {
            let line = e.to_json();
            let v = parse(&line).unwrap();
            assert_eq!(v.get("ev").unwrap().as_str(), Some(e.kind()), "{line}");
        }
    }

    #[test]
    fn flat_method_checkpoint_serializes_null() {
        let e = TelemetryEvent::Phase1Sampled {
            round: 3,
            edges: vec![0, 1],
            checkpoint: None,
        };
        let v = parse(&e.to_json()).unwrap();
        assert!(v.get("c1").unwrap().is_null());
        assert!(v.get("c2").unwrap().is_null());
    }

    #[test]
    fn dual_update_p_round_trips_to_f32() {
        let p = vec![0.1f32, 0.333_333_34, 1.0 / 7.0];
        let e = TelemetryEvent::DualUpdate {
            round: 0,
            edges: vec![],
            losses: vec![],
            p: p.clone(),
            elapsed_s: 0.0,
        };
        let v = parse(&e.to_json()).unwrap();
        let back: Vec<f32> = v
            .get("p")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|x| x.as_f64().unwrap() as f32)
            .collect();
        assert_eq!(back, p);
    }
}
