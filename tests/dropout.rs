//! Client-dropout robustness: the hierarchical algorithms tolerate crashed
//! or deadline-cut clients.

use hierminimax::core::algorithms::{Algorithm, HierMinimax, HierMinimaxConfig, RunOpts};
use hierminimax::core::metrics::evaluate;
use hierminimax::core::problem::FederatedProblem;
use hierminimax::data::scenarios::tiny_problem;
use hierminimax::simnet::{Link, Parallelism};

fn cfg(dropout: f32, rounds: usize) -> HierMinimaxConfig {
    HierMinimaxConfig {
        rounds,
        tau1: 2,
        tau2: 2,
        m_edges: 2,
        eta_w: 0.1,
        eta_p: 0.005,
        batch_size: 2,
        loss_batch: 8,
        weight_update_model: Default::default(),
        quantizer: Default::default(),
        dropout,
        tau2_per_edge: None,
        opts: RunOpts {
            eval_every: 0,
            parallelism: Parallelism::Rayon,
            trace: false,
            ..Default::default()
        },
    }
}

#[test]
fn learns_through_twenty_percent_dropout() {
    let sc = tiny_problem(3, 2, 95);
    let fp = FederatedProblem::logistic_from_scenario(&sc);
    let r = HierMinimax::new(cfg(0.2, 300)).run(&fp, 5);
    let e = evaluate(&fp, &r.final_w, Parallelism::Rayon);
    assert!(
        e.average > 0.9,
        "20% dropout run only reached {:.3}",
        e.average
    );
    // Weights remain a distribution.
    let sum: f32 = r.final_p.iter().sum();
    assert!((sum - 1.0).abs() < 1e-4);
}

#[test]
fn dropout_reduces_uplink_traffic_proportionally() {
    let sc = tiny_problem(3, 2, 96);
    let fp = FederatedProblem::logistic_from_scenario(&sc);
    let clean = HierMinimax::new(cfg(0.0, 40)).run(&fp, 5);
    let lossy = HierMinimax::new(cfg(0.5, 40)).run(&fp, 5);
    let up = |r: &hierminimax::core::RunResult| r.comm.uplink_msgs(Link::ClientEdge);
    // Phase-1 uploads shrink by roughly the survival rate (Phase-2 scalar
    // reports are unaffected), so well below the clean count but nonzero.
    assert!(
        up(&lossy) < up(&clean) * 4 / 5,
        "{} vs {}",
        up(&lossy),
        up(&clean)
    );
    assert!(up(&lossy) > 0);
    // Downlink broadcasts are NOT reduced by dropout (the edge pushes
    // before knowing who will survive); they differ between the runs only
    // through the diverging participation sampling, so bound loosely.
    let down = |r: &hierminimax::core::RunResult| r.comm.downlink_msgs(Link::ClientEdge);
    assert!(
        down(&lossy) * 2 > down(&clean),
        "{} vs {}",
        down(&lossy),
        down(&clean)
    );
}

#[test]
fn dropout_is_deterministic() {
    let sc = tiny_problem(3, 2, 97);
    let fp = FederatedProblem::logistic_from_scenario(&sc);
    let a = HierMinimax::new(cfg(0.3, 10)).run(&fp, 9);
    let b = HierMinimax::new(cfg(0.3, 10)).run(&fp, 9);
    assert_eq!(a.final_w, b.final_w);
    assert_eq!(a.comm, b.comm);
    // And sequential matches parallel under dropout too.
    let mut c_cfg = cfg(0.3, 10);
    c_cfg.opts.parallelism = Parallelism::Sequential;
    let c = HierMinimax::new(c_cfg).run(&fp, 9);
    assert_eq!(a.final_w, c.final_w);
}

#[test]
fn extreme_dropout_still_terminates() {
    // 90% dropout: most blocks lose most clients, some edges lose all of
    // them; the run must still complete with finite parameters.
    let sc = tiny_problem(3, 2, 98);
    let fp = FederatedProblem::logistic_from_scenario(&sc);
    let r = HierMinimax::new(cfg(0.9, 30)).run(&fp, 11);
    assert!(r.final_w.iter().all(|x| x.is_finite()));
    assert!(r.final_p.iter().all(|x| x.is_finite()));
}

#[test]
fn total_dropout_is_robust() {
    // dropout = 1.0: every client drops every block, so no edge ever
    // uploads and the global model can only stay at its initialization.
    // The run must complete without panicking or dividing by zero, keep
    // all parameters finite, and record zero client->edge uplink traffic.
    let sc = tiny_problem(3, 2, 99);
    let fp = FederatedProblem::logistic_from_scenario(&sc);
    let init = hm_testkit::reference_init_w(&fp, 13);
    let r = HierMinimax::new(cfg(1.0, 5)).run(&fp, 13);
    assert!(r.final_w.iter().all(|x| x.is_finite()));
    assert!(r.final_p.iter().all(|x| x.is_finite()));
    assert_eq!(
        r.final_w, init,
        "with no surviving uploads the model must not move"
    );
    let up = r.comm.uplink_floats(Link::ClientEdge);
    // Phase 2 still uploads one loss scalar per sampled client; block
    // uploads (d floats each) must all be gone.
    assert!(
        up < 5 * 2 * 2 * fp.num_params() as u64,
        "client->edge uplink should carry no model deltas, got {up} floats"
    );
}
