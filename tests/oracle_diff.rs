//! Differential tests: the optimized algorithm implementations must be
//! **bit-identical** to the deliberately naive reference oracle in
//! `hm-testkit` — same keyed RNG streams, same accumulation order, same
//! projections, so every `assert_eq!` below is on raw `Vec<f32>` with no
//! tolerance. Any refactor of the hot path (fused steps, workspaces,
//! scratch reuse) that changes even one ULP anywhere fails here.

use hierminimax::core::algorithms::{
    Algorithm, Drfa, DrfaConfig, FedAvg, FedAvgConfig, HierMinimax,
};
use hierminimax::simnet::trace::Event;
use hm_testkit::strategies::{arb_scenario, traced_opts};
use hm_testkit::{
    reference_drfa_round, reference_fedavg_round, reference_hierminimax_run, reference_init_w,
    ReferenceRound,
};
use proptest::prelude::*;

/// Per-round `(w, p)` iterates pulled out of a trace.
fn traced_iterates(events: &[Event]) -> (Vec<Vec<f32>>, Vec<Vec<f32>>) {
    let mut ws = Vec::new();
    let mut ps = Vec::new();
    for e in events {
        match e {
            Event::GlobalModel { w, .. } => ws.push(w.clone()),
            Event::WeightUpdate { p, .. } => ps.push(p.clone()),
            _ => {}
        }
    }
    (ws, ps)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// HierMinimax's per-round global model and edge weights match the
    /// naive reference round-for-round, bit-for-bit. The oracle models the
    /// fault-free protocol (legacy dropout included), so the generated
    /// fault plan is cleared here; fault-injected runs are covered by the
    /// conformance replay and the dedicated fault suite.
    #[test]
    fn hierminimax_matches_reference(spec in arb_scenario()) {
        let mut spec = spec;
        spec.fault = hierminimax::simnet::FaultPlan::default();
        let fp = spec.problem();
        let cfg = spec.hierminimax_config();
        let r = HierMinimax::new(cfg.clone()).run(&fp, spec.run_seed);
        let (ws, ps) = traced_iterates(&r.trace.events());
        let reference: Vec<ReferenceRound> =
            reference_hierminimax_run(&fp, &cfg, spec.run_seed);

        prop_assert_eq!(ws.len(), reference.len());
        prop_assert_eq!(ps.len(), reference.len());
        for (k, rr) in reference.iter().enumerate() {
            prop_assert_eq!(&ws[k], &rr.w, "w diverged at round {} ({:?})", k, spec);
            prop_assert_eq!(&ps[k], &rr.p, "p diverged at round {} ({:?})", k, spec);
        }
        let last = reference.last().unwrap();
        prop_assert_eq!(&r.final_w, &last.w);
        prop_assert_eq!(&r.final_p, &last.p);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// FedAvg's per-round global model matches the naive reference.
    #[test]
    fn fedavg_matches_reference(spec in arb_scenario()) {
        let fp = spec.problem();
        let n_clients = spec.n_edges * spec.clients_per_edge;
        let cfg = FedAvgConfig {
            rounds: spec.rounds,
            tau1: spec.tau1,
            m_clients: 1 + (spec.m_edges * spec.clients_per_edge) % n_clients,
            eta_w: 0.1,
            batch_size: 2,
            opts: traced_opts(),
        };
        let r = FedAvg::new(cfg.clone()).run(&fp, spec.run_seed);
        let (ws, _) = traced_iterates(&r.trace.events());
        prop_assert_eq!(ws.len(), cfg.rounds);

        let mut w = reference_init_w(&fp, spec.run_seed);
        for (k, traced) in ws.iter().enumerate() {
            w = reference_fedavg_round(&fp, &cfg, spec.run_seed, k, &w);
            prop_assert_eq!(traced, &w, "w diverged at round {} ({:?})", k, spec);
        }
        prop_assert_eq!(&r.final_w, &w);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// DRFA's per-round global model and per-edge weight vector match the
    /// naive reference, with the client-level `q` threaded between rounds.
    #[test]
    fn drfa_matches_reference(spec in arb_scenario()) {
        let fp = spec.problem();
        let n_clients = spec.n_edges * spec.clients_per_edge;
        let cfg = DrfaConfig {
            rounds: spec.rounds,
            tau1: spec.tau1,
            m_clients: 1 + (spec.m_edges * spec.clients_per_edge) % n_clients,
            eta_w: 0.1,
            eta_q: 0.05,
            batch_size: 2,
            loss_batch: 3,
            opts: traced_opts(),
        };
        let r = Drfa::new(cfg.clone()).run(&fp, spec.run_seed);
        let (ws, ps) = traced_iterates(&r.trace.events());
        prop_assert_eq!(ws.len(), cfg.rounds);
        prop_assert_eq!(ps.len(), cfg.rounds);

        let mut w = reference_init_w(&fp, spec.run_seed);
        let mut q = vec![1.0_f32 / n_clients as f32; n_clients];
        for k in 0..cfg.rounds {
            let (w_next, q_next, p_edge) =
                reference_drfa_round(&fp, &cfg, spec.run_seed, k, &w, &q);
            prop_assert_eq!(&ws[k], &w_next, "w diverged at round {} ({:?})", k, spec);
            prop_assert_eq!(&ps[k], &p_edge, "p diverged at round {} ({:?})", k, spec);
            w = w_next;
            q = q_next;
        }
        prop_assert_eq!(&r.final_w, &w);
    }
}

/// The reference oracle is itself deterministic and seed-sensitive: the
/// cheapest smoke test that the differential suite can actually fail.
#[test]
fn reference_is_seed_sensitive() {
    let spec = hm_testkit::ScenarioSpec {
        n_edges: 3,
        clients_per_edge: 2,
        data_seed: 5,
        run_seed: 11,
        rounds: 1,
        tau1: 2,
        tau2: 2,
        m_edges: 2,
        dropout: 0.0,
        quantizer: hierminimax::simnet::Quantizer::Exact,
        p_domain: hm_testkit::PDomainSpec::Simplex,
        weight_update_model: hierminimax::core::algorithms::WeightUpdateModel::RandomCheckpoint,
        fault: hierminimax::simnet::FaultPlan::default(),
    };
    let fp = spec.problem();
    let cfg = spec.hierminimax_config();
    let a = reference_hierminimax_run(&fp, &cfg, 11);
    let b = reference_hierminimax_run(&fp, &cfg, 11);
    let c = reference_hierminimax_run(&fp, &cfg, 12);
    assert_eq!(a, b);
    assert_ne!(a, c, "different seeds must produce different runs");
}
