//! Cross-algorithm communication-accounting invariants: for every method,
//! the metered traffic must satisfy the structural identities its protocol
//! implies (floor bounds from participation, link discipline, cumulative
//! monotonicity). These catch "forgot to meter an exchange" bugs when
//! algorithms change.

use hierminimax::core::algorithms::{
    AflConfig, Algorithm, Drfa, DrfaConfig, FedAvg, FedAvgConfig, FedProx, FedProxConfig, HierFavg,
    HierFavgConfig, HierMinimax, HierMinimaxConfig, QFedAvg, QfflConfig, RunOpts, StochasticAfl,
};
use hierminimax::core::problem::FederatedProblem;
use hierminimax::data::scenarios::tiny_problem;
use hierminimax::simnet::{Link, Parallelism};

fn opts() -> RunOpts {
    RunOpts {
        eval_every: 1,
        parallelism: Parallelism::Sequential,
        trace: false,
        ..Default::default()
    }
}

fn two_layer_algorithms() -> Vec<Box<dyn Algorithm>> {
    vec![
        Box::new(FedAvg::new(FedAvgConfig {
            rounds: 6,
            tau1: 2,
            m_clients: 4,
            eta_w: 0.1,
            batch_size: 2,
            opts: opts(),
        })),
        Box::new(FedProx::new(FedProxConfig {
            rounds: 6,
            tau1: 2,
            m_clients: 4,
            mu: 0.1,
            eta_w: 0.1,
            batch_size: 2,
            opts: opts(),
        })),
        Box::new(StochasticAfl::new(AflConfig {
            rounds: 6,
            m_clients: 4,
            eta_w: 0.1,
            eta_q: 0.01,
            batch_size: 2,
            loss_batch: 4,
            opts: opts(),
        })),
        Box::new(Drfa::new(DrfaConfig {
            rounds: 6,
            tau1: 2,
            m_clients: 4,
            eta_w: 0.1,
            eta_q: 0.01,
            batch_size: 2,
            loss_batch: 4,
            opts: opts(),
        })),
        Box::new(QFedAvg::new(QfflConfig {
            rounds: 6,
            tau1: 2,
            m_clients: 4,
            q: 1.0,
            eta_w: 0.1,
            batch_size: 2,
            loss_batch: 4,
            opts: opts(),
        })),
    ]
}

fn three_layer_algorithms() -> Vec<Box<dyn Algorithm>> {
    vec![
        Box::new(HierFavg::new(HierFavgConfig {
            rounds: 6,
            tau1: 2,
            tau2: 3,
            m_edges: 2,
            eta_w: 0.1,
            batch_size: 2,
            quantizer: Default::default(),
            dropout: 0.0,
            opts: opts(),
        })),
        Box::new(HierMinimax::new(HierMinimaxConfig {
            rounds: 6,
            tau1: 2,
            tau2: 3,
            m_edges: 2,
            eta_w: 0.1,
            eta_p: 0.01,
            batch_size: 2,
            loss_batch: 4,
            weight_update_model: Default::default(),
            quantizer: Default::default(),
            dropout: 0.0,
            tau2_per_edge: None,
            opts: opts(),
        })),
    ]
}

#[test]
fn two_layer_methods_use_only_the_client_cloud_link() {
    let sc = tiny_problem(3, 2, 101);
    let fp = FederatedProblem::logistic_from_scenario(&sc);
    for alg in two_layer_algorithms() {
        let r = alg.run(&fp, 3);
        let s = r.comm;
        assert_eq!(s.rounds(Link::ClientEdge), 0, "{}", alg.name());
        assert_eq!(s.rounds(Link::EdgeCloud), 0, "{}", alg.name());
        assert_eq!(s.uplink_floats(Link::ClientEdge), 0, "{}", alg.name());
        assert_eq!(s.uplink_floats(Link::EdgeCloud), 0, "{}", alg.name());
        assert_eq!(s.cloud_rounds(), 6, "{}", alg.name());
    }
}

#[test]
fn three_layer_methods_never_touch_the_client_cloud_link() {
    let sc = tiny_problem(3, 2, 102);
    let fp = FederatedProblem::logistic_from_scenario(&sc);
    for alg in three_layer_algorithms() {
        let r = alg.run(&fp, 3);
        let s = r.comm;
        assert_eq!(s.rounds(Link::ClientCloud), 0, "{}", alg.name());
        assert_eq!(s.uplink_floats(Link::ClientCloud), 0, "{}", alg.name());
        assert_eq!(s.downlink_floats(Link::ClientCloud), 0, "{}", alg.name());
        assert_eq!(s.cloud_rounds(), 6, "{}", alg.name());
    }
}

#[test]
fn model_traffic_floor_bounds_hold() {
    // Every method must at minimum broadcast d floats to each participant
    // per round and get d floats back per model sync.
    let sc = tiny_problem(3, 2, 103);
    let fp = FederatedProblem::logistic_from_scenario(&sc);
    let d = fp.num_params() as u64;
    for alg in two_layer_algorithms() {
        let r = alg.run(&fp, 3);
        let s = r.comm;
        // m = 4 participants, 6 rounds: ≥ 4·6·d down and up (AFL's union
        // broadcast can exceed).
        assert!(
            s.downlink_floats(Link::ClientCloud) >= 4 * 6 * d,
            "{}: downlink {}",
            alg.name(),
            s.downlink_floats(Link::ClientCloud)
        );
        // Uplink: with-replacement samplers (AFL, DRFA) upload once per
        // *distinct* client, so the guaranteed floor is one model per
        // round.
        assert!(
            s.uplink_floats(Link::ClientCloud) >= 6 * d,
            "{}: uplink {}",
            alg.name(),
            s.uplink_floats(Link::ClientCloud)
        );
    }
}

#[test]
fn cumulative_counters_are_monotone_across_history() {
    let sc = tiny_problem(3, 2, 104);
    let fp = FederatedProblem::logistic_from_scenario(&sc);
    let mut algs = two_layer_algorithms();
    algs.extend(three_layer_algorithms());
    for alg in algs {
        let r = alg.run(&fp, 5);
        for w in r.history.rounds.windows(2) {
            // `since` panics if any counter decreased.
            let delta = w[1].comm.since(&w[0].comm);
            assert!(
                delta.cloud_rounds() >= 1,
                "{}: a round passed without cloud communication",
                alg.name()
            );
        }
    }
}
