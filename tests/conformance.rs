//! Protocol-conformance suite: every traced run must replay cleanly
//! through the `hm-testkit` automaton, and deliberately corrupted traces
//! must be rejected with the right error.
//!
//! The property tests sweep generated scenarios (topology, periods,
//! participation, dropout, fault plans, quantizers, constrained `P` sets);
//! the pinned corpus below re-checks specs that exercised tricky corners
//! when first generated (total blackout, capped simplex, quantized
//! uploads, degenerate `τ = 1`, lossy links with retries, outage-heavy
//! rounds), so they stay covered regardless of how the generator evolves.

use hierminimax::checkpoint::{read_snapshot, snapshot_path};
use hierminimax::core::algorithms::{
    Algorithm, HierFavg, HierMinimax, MultiLevelMinimax, WeightUpdateModel,
};
use hierminimax::core::CheckpointOpts;
use hierminimax::simnet::sampling::sample_edges_uniform;
use hierminimax::simnet::trace::Event;
use hierminimax::simnet::{CommStats, FaultPlan, Quantizer};
use hm_testkit::strategies::{arb_multilevel, arb_scenario};
use hm_testkit::{
    check_hierfavg_trace, check_hierminimax_trace, check_multilevel_trace, splice_traces,
    ConformanceError, PDomainSpec, ScenarioSpec,
};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every generated HierMinimax run conforms to the Algorithm-1 model.
    #[test]
    fn hierminimax_traces_conform(spec in arb_scenario()) {
        let fp = spec.problem();
        let cfg = spec.hierminimax_config();
        let r = HierMinimax::new(cfg.clone()).run(&fp, spec.run_seed);
        let report = check_hierminimax_trace(&fp, &cfg, spec.run_seed, &r.trace.events())
            .unwrap_or_else(|e| panic!("{spec:?}: {e}"));
        prop_assert_eq!(report.rounds, spec.rounds);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Every generated HierFAVG run conforms to the Phase-1-only model.
    #[test]
    fn hierfavg_traces_conform(spec in arb_scenario()) {
        let fp = spec.problem();
        let cfg = spec.hierfavg_config();
        let r = HierFavg::new(cfg.clone()).run(&fp, spec.run_seed);
        let report = check_hierfavg_trace(&fp, &cfg, spec.run_seed, &r.trace.events())
            .unwrap_or_else(|e| panic!("{spec:?}: {e}"));
        prop_assert_eq!(report.rounds, spec.rounds);
        prop_assert_eq!(report.checkpoints, 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generated multi-level run conforms at the cloud level,
    /// including the recursive intermediate-link comm accounting.
    #[test]
    fn multilevel_traces_conform(spec in arb_multilevel()) {
        let fp = spec.problem();
        let cfg = spec.config();
        let r = MultiLevelMinimax::new(cfg.clone()).run(&fp, spec.run_seed);
        let report = check_multilevel_trace(&fp, &cfg, spec.run_seed, &r.trace.events())
            .unwrap_or_else(|e| panic!("{spec:?}: {e}"));
        prop_assert_eq!(report.rounds, spec.rounds);
    }
}

/// Pinned regression corpus: specs covering corners the generator only
/// hits occasionally. Kept as literal values so a change in the generator
/// (or its seeding) never silently drops them.
fn regression_corpus() -> Vec<ScenarioSpec> {
    let base = ScenarioSpec {
        n_edges: 3,
        clients_per_edge: 2,
        data_seed: 17,
        run_seed: 91,
        rounds: 2,
        tau1: 2,
        tau2: 2,
        m_edges: 2,
        dropout: 0.0,
        quantizer: Quantizer::Exact,
        p_domain: PDomainSpec::Simplex,
        weight_update_model: WeightUpdateModel::RandomCheckpoint,
        fault: FaultPlan::default(),
    };
    vec![
        // Total blackout: every client drops every block.
        ScenarioSpec {
            dropout: 1.0,
            ..base.clone()
        },
        // Heavy partial dropout with a quantized uplink.
        ScenarioSpec {
            dropout: 0.55,
            quantizer: Quantizer::Stochastic { bits: 2 },
            run_seed: 4242,
            ..base.clone()
        },
        // Capped simplex with all edges participating.
        ScenarioSpec {
            n_edges: 4,
            m_edges: 4,
            p_domain: PDomainSpec::CappedSimplex { lo: 0.02, hi: 0.75 },
            ..base.clone()
        },
        // Degenerate periods: single step, single block, single edge drawn.
        ScenarioSpec {
            tau1: 1,
            tau2: 1,
            m_edges: 1,
            rounds: 3,
            ..base.clone()
        },
        // Ablation Phase-2 models.
        ScenarioSpec {
            weight_update_model: WeightUpdateModel::FinalModel,
            ..base.clone()
        },
        ScenarioSpec {
            weight_update_model: WeightUpdateModel::RoundStart,
            quantizer: Quantizer::Stochastic { bits: 4 },
            ..base.clone()
        },
        // Lossy WAN: retried and given-up deliveries on every channel, so
        // the replay must consume interleaved fault events and the comm
        // check must account every retransmission.
        ScenarioSpec {
            run_seed: 515,
            rounds: 3,
            fault: FaultPlan {
                msg_loss: 0.45,
                max_retries: 2,
                ..FaultPlan::default()
            },
            ..base.clone()
        },
        // Outage-heavy round mix, including all-sampled-edges-out rounds
        // (stale `w^(k)` reuse) plus zero-retry message loss (gave-up at
        // attempt one) and crash/straggler thinning of the edge blocks.
        ScenarioSpec {
            run_seed: 909,
            rounds: 4,
            fault: FaultPlan {
                client_crash: 0.3,
                edge_outage: 0.5,
                msg_loss: 0.25,
                max_retries: 0,
                straggler_rate: 0.3,
                straggler_slowdown: 3.0,
                deadline_factor: 1.5,
                ..FaultPlan::default()
            },
            ..base.clone()
        },
        // Faults stacked on quantized uplinks and legacy dropout: the plan
        // absorbs `dropout` into its crash rate, which the replay must
        // mirror.
        ScenarioSpec {
            run_seed: 1717,
            dropout: 0.4,
            quantizer: Quantizer::Stochastic { bits: 3 },
            fault: FaultPlan {
                edge_outage: 0.3,
                msg_loss: 0.2,
                max_retries: 1,
                ..FaultPlan::default()
            },
            ..base
        },
    ]
}

#[test]
fn regression_corpus_conforms() {
    for spec in regression_corpus() {
        let fp = spec.problem();
        let cfg = spec.hierminimax_config();
        let r = HierMinimax::new(cfg.clone()).run(&fp, spec.run_seed);
        check_hierminimax_trace(&fp, &cfg, spec.run_seed, &r.trace.events())
            .unwrap_or_else(|e| panic!("{spec:?}: {e}"));
        let fcfg = spec.hierfavg_config();
        let r = HierFavg::new(fcfg.clone()).run(&fp, spec.run_seed);
        check_hierfavg_trace(&fp, &fcfg, spec.run_seed, &r.trace.events())
            .unwrap_or_else(|e| panic!("{spec:?}: {e}"));
    }
}

// ---- Negative tests: injected protocol bugs must be caught. -------------

fn valid_run() -> (
    hierminimax::core::problem::FederatedProblem,
    hierminimax::core::algorithms::HierMinimaxConfig,
    u64,
    Vec<Event>,
) {
    let spec = ScenarioSpec {
        n_edges: 3,
        clients_per_edge: 2,
        data_seed: 23,
        run_seed: 77,
        rounds: 2,
        tau1: 2,
        tau2: 2,
        m_edges: 2,
        dropout: 0.0,
        quantizer: Quantizer::Exact,
        p_domain: PDomainSpec::Simplex,
        weight_update_model: WeightUpdateModel::RandomCheckpoint,
        fault: FaultPlan::default(),
    };
    let fp = spec.problem();
    let cfg = spec.hierminimax_config();
    let r = HierMinimax::new(cfg.clone()).run(&fp, spec.run_seed);
    (fp, cfg, spec.run_seed, r.trace.events())
}

#[test]
fn off_by_one_checkpoint_is_caught() {
    let (fp, cfg, seed, mut events) = valid_run();
    // Shift the first checkpoint draw past the end of the block — the
    // classic 1-based-indexing bug.
    let ev = events
        .iter_mut()
        .find(|e| matches!(e, Event::CheckpointSampled { .. }))
        .unwrap();
    if let Event::CheckpointSampled { c1, .. } = ev {
        *c1 += cfg.tau1;
    }
    let err = check_hierminimax_trace(&fp, &cfg, seed, &events).unwrap_err();
    assert!(
        matches!(err, ConformanceError::CheckpointOutOfRange { .. }),
        "expected CheckpointOutOfRange, got {err}"
    );
}

#[test]
fn unweighted_phase1_sampling_is_caught() {
    let (fp, cfg, seed, mut events) = valid_run();
    // Re-draw Phase 1 uniformly instead of ∝ p — the "forgot the weights"
    // bug. Uses the *same* keyed stream, so only the distribution differs.
    let n_edges = 3;
    let ev = events
        .iter_mut()
        .find(|e| matches!(e, Event::Phase1EdgesSampled { .. }))
        .unwrap();
    if let Event::Phase1EdgesSampled { round, edges } = ev {
        let mut rng = hierminimax::data::StreamRng::new(
            seed,
            hierminimax::data::rng::Purpose::EdgeSampling,
            *round as u64,
            0,
        );
        let uniform = sample_edges_uniform(n_edges, edges.len(), &mut rng);
        // The draws must actually differ for the mutation to mean anything;
        // pick a different run_seed if this ever collides.
        assert_ne!(uniform, *edges, "pick a different seed for this test");
        *edges = uniform;
    }
    let err = check_hierminimax_trace(&fp, &cfg, seed, &events).unwrap_err();
    assert!(
        matches!(
            err,
            ConformanceError::SamplingMismatch {
                phase: "phase1",
                ..
            } | ConformanceError::BroadcastMismatch { .. }
        ),
        "expected SamplingMismatch, got {err}"
    );
}

#[test]
fn infeasible_weight_update_is_caught() {
    let (fp, cfg, seed, mut events) = valid_run();
    // Ascent without the projection: p leaves the simplex.
    let ev = events
        .iter_mut()
        .find(|e| matches!(e, Event::WeightUpdate { .. }))
        .unwrap();
    if let Event::WeightUpdate { p, .. } = ev {
        *p = vec![0.9; p.len()];
    }
    let err = check_hierminimax_trace(&fp, &cfg, seed, &events).unwrap_err();
    assert!(
        matches!(err, ConformanceError::InfeasibleWeights { .. }),
        "expected InfeasibleWeights, got {err}"
    );
}

#[test]
fn wrong_comm_accounting_is_caught() {
    let (fp, cfg, seed, mut events) = valid_run();
    // A meter that never recorded anything: every per-round delta zero.
    let ev = events
        .iter_mut()
        .find(|e| matches!(e, Event::RoundComm { .. }))
        .unwrap();
    if let Event::RoundComm { delta, .. } = ev {
        *delta = CommStats::default();
    }
    let err = check_hierminimax_trace(&fp, &cfg, seed, &events).unwrap_err();
    assert!(
        matches!(err, ConformanceError::CommMismatch { .. }),
        "expected CommMismatch, got {err}"
    );
}

#[test]
fn reordered_phases_are_caught() {
    let (fp, cfg, seed, mut events) = valid_run();
    // Swap the first Phase-1 sample and the checkpoint draw: right events,
    // wrong protocol order.
    events.swap(0, 1);
    let err = check_hierminimax_trace(&fp, &cfg, seed, &events).unwrap_err();
    assert!(
        matches!(err, ConformanceError::UnexpectedEvent { .. }),
        "expected UnexpectedEvent, got {err}"
    );
}

// ---- Resumed-run splices (DESIGN.md §12). -------------------------------
//
// A snapshot does not carry the trace: the killed run logged rounds
// `0..k`, the resumed run logs `k..K`, and the full-run view is the
// splice at the round-`k` boundary. The conformance automaton replays a
// spliced log exactly like an uninterrupted one, so an honest splice must
// pass (and, by bit-identity, *equal* the uninterrupted trace), while a
// forged splice — a skipped or repeated round — must be rejected.

/// Run `spec` once with per-round checkpoints in a throwaway dir, then
/// resume from the round-`kill_round` snapshot. Returns the checkpointed
/// run's trace (the "killed" run's log is its prefix before `kill_round`)
/// and the resumed run's trace.
fn checkpointed_and_resumed(
    spec: &ScenarioSpec,
    kill_round: usize,
    tag: &str,
) -> (Vec<Event>, Vec<Event>) {
    let fp = spec.problem();
    let dir = std::env::temp_dir().join(format!("hm-splice-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut ck_cfg = spec.hierminimax_config();
    ck_cfg.opts.checkpoint = CheckpointOpts::writing(&dir, 1);
    let prefix = HierMinimax::new(ck_cfg)
        .run(&fp, spec.run_seed)
        .trace
        .events();

    let snap = read_snapshot(&snapshot_path(&dir, "HierMinimax", kill_round))
        .unwrap_or_else(|e| panic!("{tag}: reading round-{kill_round} snapshot: {e}"));
    let mut rs_cfg = spec.hierminimax_config();
    rs_cfg.opts.checkpoint = CheckpointOpts::resuming(Arc::new(snap));
    let suffix = HierMinimax::new(rs_cfg)
        .run(&fp, spec.run_seed)
        .trace
        .events();

    let _ = std::fs::remove_dir_all(&dir);
    (prefix, suffix)
}

fn splice_spec() -> ScenarioSpec {
    ScenarioSpec {
        n_edges: 3,
        clients_per_edge: 2,
        data_seed: 23,
        run_seed: 77,
        rounds: 4,
        tau1: 2,
        tau2: 2,
        m_edges: 2,
        dropout: 0.0,
        quantizer: Quantizer::Exact,
        p_domain: PDomainSpec::Simplex,
        weight_update_model: WeightUpdateModel::RandomCheckpoint,
        fault: FaultPlan::default(),
    }
}

#[test]
fn spliced_resumed_trace_conforms_and_matches_uninterrupted() {
    let spec = splice_spec();
    let fp = spec.problem();
    let cfg = spec.hierminimax_config();
    let full = HierMinimax::new(cfg.clone())
        .run(&fp, spec.run_seed)
        .trace
        .events();

    for kill_round in 1..spec.rounds {
        let (prefix, suffix) = checkpointed_and_resumed(&spec, kill_round, "honest");
        let spliced = splice_traces(&prefix, &suffix, kill_round);
        assert_eq!(
            spliced, full,
            "splice at round {kill_round} diverges from the uninterrupted trace"
        );
        let report = check_hierminimax_trace(&fp, &cfg, spec.run_seed, &spliced)
            .unwrap_or_else(|e| panic!("splice at round {kill_round}: {e}"));
        assert_eq!(report.rounds, spec.rounds);
    }
}

#[test]
fn forged_splice_skipping_a_round_is_rejected() {
    let spec = splice_spec();
    let fp = spec.problem();
    let cfg = spec.hierminimax_config();
    // Prefix cut before round 1, suffix resumed at round 2: round 1 is
    // missing from the spliced log.
    let (prefix, suffix) = checkpointed_and_resumed(&spec, 2, "skip");
    let forged = splice_traces(&prefix, &suffix, 1);
    let err = check_hierminimax_trace(&fp, &cfg, spec.run_seed, &forged).unwrap_err();
    assert!(
        matches!(
            err,
            ConformanceError::UnexpectedEvent { .. } | ConformanceError::SamplingMismatch { .. }
        ),
        "expected the skipped round to desync the replay, got {err}"
    );
}

#[test]
fn forged_splice_repeating_a_round_is_rejected() {
    let spec = splice_spec();
    let fp = spec.problem();
    let cfg = spec.hierminimax_config();
    // Prefix kept through round 1, suffix resumed at round 1: round 1
    // appears twice in the spliced log.
    let (prefix, suffix) = checkpointed_and_resumed(&spec, 1, "repeat");
    let forged = splice_traces(&prefix, &suffix, 2);
    let err = check_hierminimax_trace(&fp, &cfg, spec.run_seed, &forged).unwrap_err();
    assert!(
        matches!(
            err,
            ConformanceError::UnexpectedEvent { .. } | ConformanceError::SamplingMismatch { .. }
        ),
        "expected the repeated round to desync the replay, got {err}"
    );
}

/// Pinned resumed-run corpus: scenario + kill-round pairs whose spliced
/// traces must keep replaying cleanly. One entry stresses the fault
/// machinery across the resume boundary (lossy links with retries), the
/// other stresses quantized uplinks plus legacy dropout.
fn resumed_regression_corpus() -> Vec<(ScenarioSpec, usize)> {
    vec![
        (
            ScenarioSpec {
                run_seed: 515,
                rounds: 3,
                fault: FaultPlan {
                    msg_loss: 0.45,
                    max_retries: 2,
                    ..FaultPlan::default()
                },
                ..splice_spec()
            },
            1,
        ),
        (
            ScenarioSpec {
                run_seed: 1717,
                rounds: 3,
                dropout: 0.4,
                quantizer: Quantizer::Stochastic { bits: 3 },
                ..splice_spec()
            },
            2,
        ),
    ]
}

#[test]
fn resumed_regression_corpus_conforms() {
    for (i, (spec, kill_round)) in resumed_regression_corpus().into_iter().enumerate() {
        let fp = spec.problem();
        let cfg = spec.hierminimax_config();
        let full = HierMinimax::new(cfg.clone())
            .run(&fp, spec.run_seed)
            .trace
            .events();
        let tag = format!("corpus-{i}");
        let (prefix, suffix) = checkpointed_and_resumed(&spec, kill_round, &tag);
        let spliced = splice_traces(&prefix, &suffix, kill_round);
        assert_eq!(spliced, full, "{spec:?} kill {kill_round}: splice diverges");
        check_hierminimax_trace(&fp, &cfg, spec.run_seed, &spliced)
            .unwrap_or_else(|e| panic!("{spec:?} kill {kill_round}: {e}"));
    }
}

// ---- Churn splices (DESIGN.md §15). --------------------------------------
//
// The `churn` snapshot section restores the active topology, rosters and
// joiner provenance, so a killed-and-resumed churn run splices into the
// uninterrupted trace and the membership-aware automaton replays it — the
// end-to-end proof that every transition (and the re-homed participation
// and comm accounting that follow it) survives the resume boundary.

#[test]
fn spliced_churn_trace_conforms_and_matches_uninterrupted() {
    use hierminimax::core::algorithms::HierMinimaxConfig;
    use hierminimax::core::problem::FederatedProblem;
    use hierminimax::data::scenarios::tiny_problem;
    use hierminimax::simnet::ChurnPlan;

    let fp = FederatedProblem::logistic_from_scenario(&tiny_problem(4, 2, 23));
    let rounds = 6;
    let cfg = HierMinimaxConfig {
        rounds,
        tau1: 2,
        tau2: 2,
        m_edges: 2,
        batch_size: 2,
        loss_batch: 4,
        opts: hierminimax::core::algorithms::RunOpts {
            trace: true,
            churn: ChurnPlan::preset("chaos-churn").unwrap(),
            ..Default::default()
        },
        ..Default::default()
    };
    let seed = 42;
    let full_run = HierMinimax::new(cfg.clone()).run(&fp, seed);
    assert!(full_run.churn.rehomed > 0, "chaos-churn must re-home here");
    let full = full_run.trace.events();
    check_hierminimax_trace(&fp, &cfg, seed, &full).unwrap();

    let dir = std::env::temp_dir().join(format!("hm-churn-splice-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut ck_cfg = cfg.clone();
    ck_cfg.opts.checkpoint = CheckpointOpts::writing(&dir, 1);
    let prefix = HierMinimax::new(ck_cfg).run(&fp, seed).trace.events();

    for kill_round in 1..rounds {
        let snap = read_snapshot(&snapshot_path(&dir, "HierMinimax", kill_round))
            .unwrap_or_else(|e| panic!("reading round-{kill_round} snapshot: {e}"));
        let mut rs_cfg = cfg.clone();
        rs_cfg.opts.checkpoint = CheckpointOpts::resuming(Arc::new(snap));
        let suffix = HierMinimax::new(rs_cfg).run(&fp, seed).trace.events();
        let spliced = splice_traces(&prefix, &suffix, kill_round);
        assert_eq!(
            spliced, full,
            "churn splice at round {kill_round} diverges from the uninterrupted trace"
        );
        let report = check_hierminimax_trace(&fp, &cfg, seed, &spliced)
            .unwrap_or_else(|e| panic!("churn splice at round {kill_round}: {e}"));
        assert_eq!(report.rounds, rounds);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
