//! End-to-end behaviour of the Hier-Local-QSGD quantization extension:
//! quantized runs still learn, cost proportionally less uplink, and the
//! codec leaves the default (exact) path bit-identical.

use hierminimax::core::algorithms::{Algorithm, HierMinimax, HierMinimaxConfig, RunOpts};
use hierminimax::core::metrics::evaluate;
use hierminimax::core::problem::FederatedProblem;
use hierminimax::data::scenarios::tiny_problem;
use hierminimax::simnet::{Link, Parallelism, Quantizer};

fn cfg(quantizer: Quantizer, rounds: usize) -> HierMinimaxConfig {
    HierMinimaxConfig {
        rounds,
        tau1: 2,
        tau2: 2,
        m_edges: 2,
        eta_w: 0.1,
        eta_p: 0.005,
        batch_size: 2,
        loss_batch: 8,
        weight_update_model: Default::default(),
        quantizer,
        dropout: 0.0,
        tau2_per_edge: None,
        opts: RunOpts {
            eval_every: 0,
            parallelism: Parallelism::Rayon,
            trace: false,
            ..Default::default()
        },
    }
}

#[test]
fn quantized_run_still_learns() {
    let sc = tiny_problem(3, 2, 71);
    let fp = FederatedProblem::logistic_from_scenario(&sc);
    let r = HierMinimax::new(cfg(Quantizer::Stochastic { bits: 8 }, 250)).run(&fp, 5);
    let e = evaluate(&fp, &r.final_w, Parallelism::Rayon);
    assert!(
        e.average > 0.9,
        "8-bit quantized run reached only {:.3}",
        e.average
    );
}

#[test]
fn uplink_floats_shrink_with_bits() {
    let sc = tiny_problem(3, 2, 72);
    let fp = FederatedProblem::logistic_from_scenario(&sc);
    let exact = HierMinimax::new(cfg(Quantizer::Exact, 10)).run(&fp, 5);
    let q8 = HierMinimax::new(cfg(Quantizer::Stochastic { bits: 8 }, 10)).run(&fp, 5);
    let q2 = HierMinimax::new(cfg(Quantizer::Stochastic { bits: 2 }, 10)).run(&fp, 5);
    let up = |r: &hierminimax::core::RunResult| {
        r.comm.uplink_floats(Link::ClientEdge) + r.comm.uplink_floats(Link::EdgeCloud)
    };
    assert!(
        up(&exact) > up(&q8) * 3,
        "8-bit saves ≥3x: {} vs {}",
        up(&exact),
        up(&q8)
    );
    assert!(
        up(&q8) > up(&q2) * 2,
        "2-bit saves more: {} vs {}",
        up(&q8),
        up(&q2)
    );
    // Downlink (broadcasts) stays full precision.
    assert_eq!(
        exact.comm.downlink_floats(Link::ClientEdge),
        q2.comm.downlink_floats(Link::ClientEdge)
    );
    // Round counts are unchanged by the codec.
    assert_eq!(exact.comm.cloud_rounds(), q2.comm.cloud_rounds());
}

#[test]
fn quantization_is_deterministic_and_parallel_safe() {
    let sc = tiny_problem(3, 2, 73);
    let fp = FederatedProblem::logistic_from_scenario(&sc);
    let mut a_cfg = cfg(Quantizer::Stochastic { bits: 4 }, 6);
    a_cfg.opts.parallelism = Parallelism::Sequential;
    let b_cfg = cfg(Quantizer::Stochastic { bits: 4 }, 6);
    let a = HierMinimax::new(a_cfg).run(&fp, 9);
    let b = HierMinimax::new(b_cfg).run(&fp, 9);
    assert_eq!(a.final_w, b.final_w);
    assert_eq!(a.final_p, b.final_p);
}

#[test]
fn coarser_quantization_degrades_gracefully_not_catastrophically() {
    let sc = tiny_problem(3, 2, 74);
    let fp = FederatedProblem::logistic_from_scenario(&sc);
    let acc = |q: Quantizer| {
        let r = HierMinimax::new(cfg(q, 250)).run(&fp, 11);
        evaluate(&fp, &r.final_w, Parallelism::Rayon).average
    };
    let exact = acc(Quantizer::Exact);
    let q4 = acc(Quantizer::Stochastic { bits: 4 });
    assert!(
        q4 > exact - 0.15,
        "4-bit quantization lost too much accuracy: {q4:.3} vs {exact:.3}"
    );
}
