//! Protocol-level assertions on Algorithm 1 via the structured event trace:
//! sampling distributions, checkpoint ranges, simplex feasibility of every
//! weight iterate, and communication accounting identities.

use hierminimax::core::algorithms::{Algorithm, HierMinimax, HierMinimaxConfig, RunOpts};
use hierminimax::core::problem::FederatedProblem;
use hierminimax::data::scenarios::tiny_problem;
use hierminimax::simnet::trace::Event;
use hierminimax::simnet::{Link, Parallelism};

fn traced_run(
    rounds: usize,
    tau1: usize,
    tau2: usize,
    m: usize,
    seed: u64,
) -> (
    FederatedProblem,
    hierminimax::core::RunResult,
    HierMinimaxConfig,
) {
    let sc = tiny_problem(4, 2, 21);
    let fp = FederatedProblem::logistic_from_scenario(&sc);
    let cfg = HierMinimaxConfig {
        rounds,
        tau1,
        tau2,
        m_edges: m,
        eta_w: 0.1,
        eta_p: 0.05,
        batch_size: 2,
        loss_batch: 4,
        weight_update_model: Default::default(),
        quantizer: Default::default(),
        dropout: 0.0,
        tau2_per_edge: None,
        opts: RunOpts {
            eval_every: 0,
            parallelism: Parallelism::Sequential,
            trace: true,
            ..Default::default()
        },
    };
    let r = HierMinimax::new(cfg.clone()).run(&fp, seed);
    (fp, r, cfg)
}

#[test]
fn every_round_emits_the_full_phase_sequence() {
    let (_, r, cfg) = traced_run(6, 2, 3, 2, 1);
    let events = r.trace.events();
    for k in 0..cfg.rounds {
        let phase1 = events
            .iter()
            .any(|e| matches!(e, Event::Phase1EdgesSampled { round, .. } if *round == k));
        let cp = events
            .iter()
            .any(|e| matches!(e, Event::CheckpointSampled { round, .. } if *round == k));
        let agg = events
            .iter()
            .any(|e| matches!(e, Event::GlobalAggregation { round } if *round == k));
        let phase2 = events
            .iter()
            .any(|e| matches!(e, Event::Phase2EdgesSampled { round, .. } if *round == k));
        let wu = events
            .iter()
            .any(|e| matches!(e, Event::WeightUpdate { round, .. } if *round == k));
        assert!(phase1 && cp && agg && phase2 && wu, "round {k} incomplete");
    }
}

#[test]
fn phase_order_within_a_round_is_correct() {
    let (_, r, _) = traced_run(3, 2, 2, 2, 2);
    let events = r.trace.events();
    for k in 0..3 {
        let pos = |pred: &dyn Fn(&Event) -> bool| -> usize {
            events.iter().position(pred).expect("event present")
        };
        let p1 = pos(&|e| matches!(e, Event::Phase1EdgesSampled { round, .. } if *round == k));
        let agg = pos(&|e| matches!(e, Event::GlobalAggregation { round } if *round == k));
        let p2 = pos(&|e| matches!(e, Event::Phase2EdgesSampled { round, .. } if *round == k));
        let wu = pos(&|e| matches!(e, Event::WeightUpdate { round, .. } if *round == k));
        assert!(p1 < agg && agg < p2 && p2 < wu, "round {k} out of order");
    }
}

#[test]
fn phase2_sets_are_distinct_and_in_range() {
    let (fp, r, cfg) = traced_run(20, 2, 2, 2, 3);
    for e in r.trace.events() {
        if let Event::Phase2EdgesSampled { edges, .. } = e {
            assert_eq!(edges.len(), cfg.m_edges);
            let mut sorted = edges.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(
                sorted.len(),
                edges.len(),
                "phase 2 must sample without replacement"
            );
            assert!(edges.iter().all(|&i| i < fp.num_edges()));
        }
    }
}

#[test]
fn checkpoints_cover_the_whole_grid_over_rounds() {
    let (_, r, cfg) = traced_run(80, 3, 2, 2, 4);
    let mut seen = vec![false; cfg.tau1 * cfg.tau2];
    for e in r.trace.events() {
        if let Event::CheckpointSampled { c1, c2, .. } = e {
            assert!(c1 < cfg.tau1 && c2 < cfg.tau2);
            seen[c2 * cfg.tau1 + c1] = true;
        }
    }
    assert!(
        seen.iter().all(|&s| s),
        "80 rounds should hit every (c1, c2) cell of a 3x2 grid: {seen:?}"
    );
}

#[test]
fn weight_iterates_stay_on_the_simplex() {
    let (_, r, _) = traced_run(25, 2, 2, 3, 5);
    for e in r.trace.events() {
        if let Event::WeightUpdate { p, round } = e {
            let sum: f32 = p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "round {round}: p sums to {sum}");
            assert!(
                p.iter().all(|&x| x >= -1e-6),
                "round {round}: negative weight"
            );
        }
    }
}

#[test]
fn client_edge_rounds_scale_with_tau2() {
    for tau2 in [1usize, 2, 4] {
        let (_, r, _) = traced_run(5, 2, tau2, 2, 6);
        // τ2 training blocks + 1 loss-estimation exchange per round.
        assert_eq!(
            r.comm.rounds(Link::ClientEdge),
            (5 * (tau2 + 1)) as u64,
            "tau2 = {tau2}"
        );
        assert_eq!(r.comm.cloud_rounds(), 5);
    }
}

#[test]
fn uplink_message_counts_match_protocol() {
    let (fp, r, cfg) = traced_run(4, 2, 3, 2, 7);
    let n0 = fp.clients_per_edge();
    let s = r.comm;
    // Phase 1: per round, each distinct sampled edge's clients upload once
    // per block; phase 2: each sampled edge's clients upload one scalar.
    // Distinct counts vary with sampling, so bound by m_edges.
    let max_per_round = (cfg.m_edges * n0 * cfg.tau2 + cfg.m_edges * n0) as u64;
    let min_per_round = (n0 * cfg.tau2 + cfg.m_edges * n0) as u64; // ≥1 distinct edge
    let per_round = s.uplink_msgs(Link::ClientEdge) / 4;
    assert!(
        (min_per_round..=max_per_round).contains(&per_round),
        "client-edge uplink msgs/round {per_round} outside [{min_per_round}, {max_per_round}]"
    );
    // Edge-cloud uplink: models (≤ m_edges distinct) + m_edges loss scalars.
    assert!(s.uplink_msgs(Link::EdgeCloud) <= (4 * 2 * cfg.m_edges) as u64);
    // Two-layer links unused.
    assert_eq!(s.uplink_msgs(Link::ClientCloud), 0);
    assert_eq!(s.downlink_msgs(Link::ClientCloud), 0);
}

#[test]
fn phase1_sampling_follows_the_weights() {
    // Freeze p at a point mass by constraining P to a tiny box around a
    // vertex-heavy vector is overkill; instead run many rounds with a large
    // eta_p on a problem whose losses differ, then check that phase-1
    // samples concentrate on high-weight edges.
    let (_, r, _) = traced_run(60, 2, 2, 2, 8);
    let events = r.trace.events();
    // Correlate: for each round, weight of sampled edges under that round's
    // previous p should on average exceed uniform (2/4 edges sampled).
    let mut p_prev: Vec<f32> = vec![0.25; 4];
    let mut mass = 0.0_f64;
    let mut count = 0usize;
    for e in &events {
        match e {
            Event::Phase1EdgesSampled { edges, .. } => {
                for &i in edges {
                    mass += f64::from(p_prev[i]);
                    count += 1;
                }
            }
            Event::WeightUpdate { p, .. } => p_prev = p.clone(),
            _ => {}
        }
    }
    let avg_mass = mass / count as f64;
    // Uniform sampling would give 0.25 in expectation; weighted sampling
    // must exceed it (weights drift away from uniform during the run).
    assert!(
        avg_mass > 0.25,
        "weighted sampling looks uniform: {avg_mass}"
    );
}

#[test]
fn heterogeneous_rates_still_learn_and_account_slots() {
    // The paper's "flexible communication frequencies": edges run
    // different numbers of client-edge aggregations per round.
    let sc = tiny_problem(4, 2, 22);
    let fp = FederatedProblem::logistic_from_scenario(&sc);
    let cfg = HierMinimaxConfig {
        rounds: 60,
        tau1: 2,
        tau2: 2, // ignored when per-edge rates are set
        m_edges: 2,
        eta_w: 0.1,
        eta_p: 0.005,
        batch_size: 2,
        loss_batch: 8,
        weight_update_model: Default::default(),
        quantizer: Default::default(),
        dropout: 0.0,
        tau2_per_edge: Some(vec![1, 2, 3, 4]),
        opts: RunOpts {
            eval_every: 0,
            parallelism: Parallelism::Rayon,
            trace: false,
            ..Default::default()
        },
    };
    let r = HierMinimax::new(cfg.clone()).run(&fp, 13);
    // Slot accounting follows the slowest edge: τ1 · max τ2 = 8 per round.
    assert_eq!(r.history.rounds.last().unwrap().slots_done, 60 * 8);
    assert_eq!(r.comm.cloud_rounds(), 60);
    // Uniform rates expressed per-edge must meter exactly like the plain
    // uniform config (concurrent edges share sync windows, so local rounds
    // are the max over sampled edges, not the per-edge sum).
    let uniform_as_rates = HierMinimax::new(HierMinimaxConfig {
        tau2_per_edge: Some(vec![2; 4]),
        ..cfg.clone()
    })
    .run(&fp, 13);
    let plain_uniform = HierMinimax::new(HierMinimaxConfig {
        tau2_per_edge: None,
        tau2: 2,
        ..cfg
    })
    .run(&fp, 13);
    assert_eq!(
        uniform_as_rates.comm.rounds(Link::ClientEdge),
        plain_uniform.comm.rounds(Link::ClientEdge),
        "per-edge [2,2,2,2] must meter like uniform tau2 = 2"
    );
    // It still learns.
    let e = hierminimax::core::metrics::evaluate(&fp, &r.final_w, Parallelism::Rayon);
    assert!(
        e.average > 0.9,
        "heterogeneous-rate run reached only {:.3}",
        e.average
    );
    // Weights remain a distribution.
    let sum: f32 = r.final_p.iter().sum();
    assert!((sum - 1.0).abs() < 1e-4);
}
