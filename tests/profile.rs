//! Profiling inertness matrix (DESIGN.md §13).
//!
//! The headline guarantee of the profiling layer, enforced here rather
//! than in prose: enabling the profiler cannot perturb a run. A profiled
//! run produces a bit-identical `RunResult` (model, weights, history,
//! comm totals) and `FaultStats`, and its *sequenced* telemetry stream —
//! everything except the unsequenced `span`/`profile_summary` events —
//! is bit-identical to the unprofiled run's.
//!
//! HierMinimax runs the full `{Sequential, Rayon} × {Chained, Barrier} ×
//! {none, chaos}` grid; the other eight algorithms run the default cell.
//! A separate shape test pins that both engines emit the same span
//! sequence (phase, round, entity) — only the measured durations differ.

use hierminimax::core::algorithms::{
    AflConfig, Algorithm, Drfa, DrfaConfig, FedAvg, FedAvgConfig, FedProx, FedProxConfig, HierFavg,
    HierFavgConfig, HierMinimax, HierMinimaxConfig, MultiLevelConfig, MultiLevelMinimax,
    OverselectConfig, OverselectMinimax, QFedAvg, QfflConfig, RunOpts, StochasticAfl,
};
use hierminimax::core::problem::FederatedProblem;
use hierminimax::core::{CheckpointOpts, RunResult};
use hierminimax::data::scenarios::tiny_problem;
use hierminimax::simnet::{ExecEngine, FaultPlan, Parallelism};
use hierminimax::telemetry::{MemorySink, Profiler, Telemetry, TelemetryEvent};
use std::sync::Arc;

const SEED: u64 = 17;
const ROUNDS: usize = 4;

fn problem() -> FederatedProblem {
    let sc = tiny_problem(3, 2, 11);
    FederatedProblem::logistic_from_scenario(&sc)
}

type Factory = Box<dyn Fn(RunOpts) -> Box<dyn Algorithm>>;

/// Every algorithm in the workspace, as a factory over `RunOpts` (same
/// configs as the resume matrix in `tests/resume.rs`).
fn all_algorithms() -> Vec<(&'static str, Factory)> {
    vec![
        (
            "HierMinimax",
            Box::new(|opts| {
                Box::new(HierMinimax::new(HierMinimaxConfig {
                    rounds: ROUNDS,
                    tau1: 2,
                    tau2: 3,
                    m_edges: 2,
                    eta_w: 0.1,
                    eta_p: 0.05,
                    batch_size: 2,
                    loss_batch: 4,
                    weight_update_model: Default::default(),
                    quantizer: Default::default(),
                    dropout: 0.0,
                    tau2_per_edge: None,
                    opts,
                })) as Box<dyn Algorithm>
            }),
        ),
        (
            "HierFAVG",
            Box::new(|opts| {
                Box::new(HierFavg::new(HierFavgConfig {
                    rounds: ROUNDS,
                    tau1: 2,
                    tau2: 3,
                    m_edges: 2,
                    eta_w: 0.1,
                    batch_size: 2,
                    quantizer: Default::default(),
                    dropout: 0.0,
                    opts,
                })) as Box<dyn Algorithm>
            }),
        ),
        (
            "MultiLevelMinimax",
            Box::new(|opts| {
                Box::new(MultiLevelMinimax::new(MultiLevelConfig {
                    rounds: ROUNDS,
                    tau1: 2,
                    tau2: 2,
                    upper: Default::default(),
                    m_groups: 2,
                    eta_w: 0.05,
                    eta_p: 0.02,
                    batch_size: 2,
                    loss_batch: 4,
                    dropout: 0.0,
                    opts,
                })) as Box<dyn Algorithm>
            }),
        ),
        (
            "Overselect",
            Box::new(|opts| {
                Box::new(OverselectMinimax::new(OverselectConfig {
                    rounds: ROUNDS,
                    tau1: 2,
                    tau2: 2,
                    m_edges: 2,
                    m_over: 3,
                    seconds_per_slot: vec![1.0, 1.5, 2.0],
                    eta_w: 0.1,
                    eta_p: 0.05,
                    batch_size: 2,
                    loss_batch: 4,
                    dropout: 0.0,
                    opts,
                })) as Box<dyn Algorithm>
            }),
        ),
        (
            "FedAvg",
            Box::new(|opts| {
                Box::new(FedAvg::new(FedAvgConfig {
                    rounds: ROUNDS,
                    tau1: 2,
                    m_clients: 4,
                    eta_w: 0.1,
                    batch_size: 2,
                    opts,
                })) as Box<dyn Algorithm>
            }),
        ),
        (
            "FedProx",
            Box::new(|opts| {
                Box::new(FedProx::new(FedProxConfig {
                    rounds: ROUNDS,
                    tau1: 2,
                    m_clients: 4,
                    mu: 0.1,
                    eta_w: 0.1,
                    batch_size: 2,
                    opts,
                })) as Box<dyn Algorithm>
            }),
        ),
        (
            "Stochastic-AFL",
            Box::new(|opts| {
                Box::new(StochasticAfl::new(AflConfig {
                    rounds: ROUNDS,
                    m_clients: 4,
                    eta_w: 0.1,
                    eta_q: 0.05,
                    batch_size: 2,
                    loss_batch: 4,
                    opts,
                })) as Box<dyn Algorithm>
            }),
        ),
        (
            "DRFA",
            Box::new(|opts| {
                Box::new(Drfa::new(DrfaConfig {
                    rounds: ROUNDS,
                    tau1: 2,
                    m_clients: 4,
                    eta_w: 0.1,
                    eta_q: 0.05,
                    batch_size: 2,
                    loss_batch: 4,
                    opts,
                })) as Box<dyn Algorithm>
            }),
        ),
        (
            "q-FedAvg",
            Box::new(|opts| {
                Box::new(QFedAvg::new(QfflConfig {
                    rounds: ROUNDS,
                    tau1: 2,
                    m_clients: 4,
                    q: 1.0,
                    eta_w: 0.1,
                    batch_size: 2,
                    loss_batch: 4,
                    opts,
                })) as Box<dyn Algorithm>
            }),
        ),
    ]
}

fn assert_identical(tag: &str, a: &RunResult, b: &RunResult) {
    assert_eq!(a.final_w, b.final_w, "{tag}: final_w differs");
    assert_eq!(a.avg_w, b.avg_w, "{tag}: avg_w differs");
    assert_eq!(a.final_p, b.final_p, "{tag}: final_p differs");
    assert_eq!(a.avg_p, b.avg_p, "{tag}: avg_p differs");
    assert_eq!(a.history, b.history, "{tag}: history differs");
    assert_eq!(a.comm, b.comm, "{tag}: comm stats differ");
    assert_eq!(a.faults, b.faults, "{tag}: fault stats differ");
}

/// Zero the wall-clock fields — the only payloads that are not a pure
/// function of the run — so streams can be compared bit-for-bit.
fn scrub(mut ev: TelemetryEvent) -> TelemetryEvent {
    match &mut ev {
        TelemetryEvent::Phase1Done { elapsed_s, .. }
        | TelemetryEvent::DualUpdate { elapsed_s, .. }
        | TelemetryEvent::RoundEnd { elapsed_s, .. }
        | TelemetryEvent::RunEnd { elapsed_s, .. } => *elapsed_s = 0.0,
        _ => {}
    }
    ev
}

/// The sequenced portion of a stream: the unsequenced profiling events
/// (`span`, `profile_summary`) dropped.
fn sequenced(events: &[TelemetryEvent]) -> Vec<TelemetryEvent> {
    events
        .iter()
        .filter(|e| {
            !matches!(
                e,
                TelemetryEvent::Span { .. } | TelemetryEvent::ProfileSummary { .. }
            )
        })
        .cloned()
        .collect()
}

fn stream_digest(events: &[TelemetryEvent]) -> String {
    events
        .iter()
        .map(|e| scrub(e.clone()).to_json())
        .collect::<Vec<_>>()
        .join("\n")
}

/// One matrix cell: the profiled run must be bit-identical to the
/// unprofiled one in everything except the unsequenced profiling events.
fn assert_profile_inert(tag: &str, factory: &Factory, base: &RunOpts) {
    let fp = problem();

    let sink_off = Arc::new(MemorySink::new());
    let mut opts_off = base.clone();
    opts_off.telemetry = Telemetry::with_sink(sink_off.clone());
    let plain = factory(opts_off).run(&fp, SEED);

    let sink_on = Arc::new(MemorySink::new());
    let mut opts_on = base.clone();
    opts_on.telemetry = Telemetry::with_sink(sink_on.clone());
    opts_on.profile = Profiler::enabled();
    let profiler = opts_on.profile.clone();
    let profiled = factory(opts_on).run(&fp, SEED);

    assert_identical(tag, &plain, &profiled);

    let on_events = sink_on.events();
    let spans = on_events
        .iter()
        .filter(|e| matches!(e, TelemetryEvent::Span { .. }))
        .count();
    assert!(spans > 0, "{tag}: profiled run emitted no spans");
    assert!(
        on_events
            .iter()
            .any(|e| matches!(e, TelemetryEvent::ProfileSummary { .. })),
        "{tag}: profiled run emitted no profile_summary"
    );
    assert!(
        !profiler.summary().is_empty(),
        "{tag}: profiler aggregates are empty"
    );
    assert_eq!(
        stream_digest(&sequenced(&on_events)),
        stream_digest(&sink_off.events()),
        "{tag}: profiling perturbed the sequenced telemetry stream"
    );
}

fn opts(par: Parallelism, engine: ExecEngine, fault: &FaultPlan) -> RunOpts {
    RunOpts {
        eval_every: 2,
        parallelism: par,
        trace: false,
        fault: fault.clone(),
        engine,
        ..Default::default()
    }
}

#[test]
fn hierminimax_profile_inert_full_grid() {
    let (name, factory) = all_algorithms().swap_remove(0);
    assert_eq!(name, "HierMinimax");
    let plans = [
        ("none", FaultPlan::preset("none").unwrap()),
        ("chaos", FaultPlan::preset("chaos").unwrap()),
    ];
    for (plan_name, plan) in &plans {
        for par in [Parallelism::Sequential, Parallelism::Rayon] {
            for engine in [ExecEngine::Chained, ExecEngine::Barrier] {
                let tag = format!("hmx-{plan_name}-{par:?}-{engine:?}").to_lowercase();
                assert_profile_inert(&tag, &factory, &opts(par, engine, plan));
            }
        }
    }
}

#[test]
fn every_algorithm_is_profile_inert() {
    let none = FaultPlan::preset("none").unwrap();
    for (name, factory) in all_algorithms() {
        let tag = format!("inert-{}", name.to_lowercase().replace('-', "_"));
        assert_profile_inert(
            &tag,
            &factory,
            &opts(Parallelism::Sequential, ExecEngine::Chained, &none),
        );
    }
}

/// The (phase, round, entity) shape of a stream's span events, durations
/// dropped.
fn span_shape(events: &[TelemetryEvent]) -> Vec<(String, Option<usize>, Option<usize>)> {
    events
        .iter()
        .filter_map(|e| match e {
            TelemetryEvent::Span {
                phase,
                round,
                entity,
                ..
            } => Some((phase.clone(), *round, *entity)),
            _ => None,
        })
        .collect()
}

#[test]
fn span_stream_shape_is_engine_and_parallelism_invariant() {
    // Both engines time per-edge chains differently internally (one task
    // chain vs per-block fork/join) but must emit the same span sequence:
    // one local_sgd_chain span per participating edge, recorded after the
    // join in edge order.
    let (_, factory) = all_algorithms().swap_remove(0);
    let none = FaultPlan::preset("none").unwrap();
    let fp = problem();
    let mut shapes = Vec::new();
    for par in [Parallelism::Sequential, Parallelism::Rayon] {
        for engine in [ExecEngine::Chained, ExecEngine::Barrier] {
            let sink = Arc::new(MemorySink::new());
            let mut o = opts(par, engine, &none);
            o.telemetry = Telemetry::with_sink(sink.clone());
            o.profile = Profiler::enabled();
            factory(o).run(&fp, SEED);
            shapes.push((format!("{par:?}-{engine:?}"), span_shape(&sink.events())));
        }
    }
    let (ref_tag, ref_shape) = &shapes[0];
    for (tag, shape) in &shapes[1..] {
        assert_eq!(shape, ref_shape, "span shape differs: {tag} vs {ref_tag}");
    }
}

#[test]
fn profiled_phases_cover_the_taxonomy() {
    let (_, factory) = all_algorithms().swap_remove(0);
    let none = FaultPlan::preset("none").unwrap();
    let fp = problem();

    let dir = std::env::temp_dir().join(format!("hm-profile-tax-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut o = opts(Parallelism::Sequential, ExecEngine::Chained, &none);
    o.checkpoint = CheckpointOpts::writing(&dir, 1);
    o.profile = Profiler::enabled();
    let profiler = o.profile.clone();
    factory(o).run(&fp, SEED);
    let _ = std::fs::remove_dir_all(&dir);

    let summary = profiler.summary();
    let count = |tag: &str| {
        summary
            .iter()
            .find(|p| p.phase == tag)
            .map_or(0, |p| p.count)
    };
    assert_eq!(count("round"), ROUNDS as u64);
    assert_eq!(count("phase1_sampling"), ROUNDS as u64);
    assert_eq!(count("dual_update"), ROUNDS as u64);
    assert_eq!(count("aggregation"), ROUNDS as u64);
    assert!(
        count("local_sgd_chain") >= ROUNDS as u64,
        "one span per participating edge per round"
    );
    // eval_every = 2 over 4 rounds: evaluations after rounds 2 and 4.
    assert_eq!(count("eval"), 2);
    // Cadence-1 checkpointing: the final round is never snapshotted.
    assert_eq!(count("checkpoint_write"), ROUNDS as u64 - 1);
    // No fault plan: the retry phase must not appear at all.
    assert_eq!(count("fault_retry"), 0);

    // Aggregate invariants: totals bound the extremes.
    for p in &summary {
        assert!(p.min_s <= p.max_s, "{}: min > max", p.phase);
        assert!(p.total_s >= p.max_s, "{}: total < max", p.phase);
        assert!(
            p.p50_s <= p.p90_s && p.p90_s <= p.p99_s,
            "{}: quantiles out of order",
            p.phase
        );
    }
}

#[test]
fn fault_retry_spans_track_injected_retries() {
    let (_, factory) = all_algorithms().swap_remove(0);
    let chaos = FaultPlan::preset("chaos").unwrap();
    let fp = problem();
    let mut o = opts(Parallelism::Sequential, ExecEngine::Chained, &chaos);
    o.profile = Profiler::enabled();
    let profiler = o.profile.clone();
    let r = factory(o).run(&fp, SEED);
    let retry_spans = profiler
        .summary()
        .iter()
        .find(|p| p.phase == "fault_retry")
        .map_or(0, |p| p.count);
    if r.faults.retries > 0 {
        assert!(retry_spans > 0, "retries occurred but no fault_retry spans");
    } else {
        assert_eq!(retry_spans, 0, "fault_retry spans without any retries");
    }
}
