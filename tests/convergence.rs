//! Convergence- and fairness-shape integration tests: the empirical
//! counterparts of Theorem 1 and the §6.3 fairness claims, at miniature
//! scale so they run in CI time.

use hierminimax::core::algorithms::{
    Algorithm, HierFavg, HierFavgConfig, HierMinimax, HierMinimaxConfig, RunOpts,
};
use hierminimax::core::duality::{duality_gap, GapConfig};
use hierminimax::core::metrics::evaluate;
use hierminimax::core::problem::FederatedProblem;
use hierminimax::data::generators::synthetic_images::ImageConfig;
use hierminimax::data::scenarios::{linear_sizes, one_class_per_edge_sized, tiny_problem};
use hierminimax::simnet::Parallelism;

fn hm_cfg(rounds: usize) -> HierMinimaxConfig {
    HierMinimaxConfig {
        rounds,
        tau1: 2,
        tau2: 2,
        m_edges: 3,
        eta_w: 0.05,
        eta_p: 0.01,
        batch_size: 2,
        loss_batch: 8,
        weight_update_model: Default::default(),
        quantizer: Default::default(),
        dropout: 0.0,
        tau2_per_edge: None,
        opts: RunOpts {
            eval_every: 0,
            parallelism: Parallelism::Rayon,
            trace: false,
            ..Default::default()
        },
    }
}

/// Theorem 1 shape: the duality gap of the averaged iterates decreases as
/// the slot budget T grows (fixed τ1, τ2 — so K grows).
#[test]
fn duality_gap_decreases_with_t() {
    let sc = tiny_problem(4, 2, 31);
    let fp = FederatedProblem::logistic_from_scenario(&sc);
    let gap_cfg = GapConfig {
        gd_iters: 150,
        ..Default::default()
    };
    let gap_at = |rounds: usize| {
        let r = HierMinimax::new(hm_cfg(rounds)).run(&fp, 5);
        duality_gap(&fp, &r.avg_w, &r.avg_p, &gap_cfg).gap
    };
    let g_small = gap_at(5);
    let g_large = gap_at(120);
    assert!(
        g_large < g_small * 0.7,
        "duality gap did not shrink with T: {g_small} -> {g_large}"
    );
}

/// The §6.3 fairness claim: on a problem with unequal data ratios and class
/// difficulty, HierMinimax achieves a better worst-edge accuracy and lower
/// variance than HierFAVG, at a bounded average-accuracy cost.
#[test]
fn minimax_beats_minimization_on_worst_edge() {
    let cfg = ImageConfig {
        side: 8,
        num_classes: 6,
        bumps_per_class: 3,
        separation: 1.0,
        noise: 0.3,
        prototype_overlap: 0.0,
        pair_similarity: 0.4,
        noise_spread: 0.2,
        separation_spread: 0.35,
    };
    let sizes = linear_sizes(40, 0.15, 6);
    let sc = one_class_per_edge_sized(cfg, 6, 2, &sizes, 250, 77);
    let fp = FederatedProblem::logistic_from_scenario(&sc);

    let opts = RunOpts {
        eval_every: 0,
        parallelism: Parallelism::Rayon,
        trace: false,
        ..Default::default()
    };
    let rounds = 600;
    let favg = HierFavg::new(HierFavgConfig {
        rounds,
        tau1: 2,
        tau2: 2,
        m_edges: 3,
        eta_w: 0.02,
        batch_size: 1,
        quantizer: Default::default(),
        dropout: 0.0,
        opts: opts.clone(),
    })
    .run(&fp, 3);
    let hm = HierMinimax::new(HierMinimaxConfig {
        rounds,
        tau1: 2,
        tau2: 2,
        m_edges: 3,
        eta_w: 0.02,
        eta_p: 0.005,
        batch_size: 1,
        loss_batch: 16,
        weight_update_model: Default::default(),
        quantizer: Default::default(),
        dropout: 0.0,
        tau2_per_edge: None,
        opts,
    })
    .run(&fp, 3);

    let e_favg = evaluate(&fp, &favg.final_w, Parallelism::Rayon);
    let e_hm = evaluate(&fp, &hm.final_w, Parallelism::Rayon);
    assert!(
        e_hm.worst > e_favg.worst + 0.02,
        "minimax did not lift the worst edge: {:.3} vs {:.3}",
        e_hm.worst,
        e_favg.worst
    );
    assert!(
        e_hm.variance_pp < e_favg.variance_pp,
        "minimax did not reduce variance: {:.1} vs {:.1}",
        e_hm.variance_pp,
        e_favg.variance_pp
    );
    assert!(
        e_hm.average > e_favg.average - 0.10,
        "minimax sacrificed too much average accuracy: {:.3} vs {:.3}",
        e_hm.average,
        e_favg.average
    );
}

/// Isolated Phase-2 property: with the model frozen (η_w = 0) the edge
/// losses are static, F(w, ·) is a fixed linear function of p, and the
/// projected ascent of eq. (7) driven by the unbiased estimator must move
/// p toward the maximum-loss vertex of the simplex.
#[test]
fn frozen_model_weights_climb_to_max_loss_vertex() {
    let sc = tiny_problem(4, 2, 88);
    // MLP with random init so the per-edge losses differ at w^(0).
    let fp = FederatedProblem::mlp_from_scenario(&sc, &[8]);
    // Small η_p over many rounds lets the unbiased drift dominate the
    // mini-batch noise of the loss estimates.
    let cfg = HierMinimaxConfig {
        rounds: 1500,
        tau1: 2,
        tau2: 2,
        m_edges: 2,
        eta_w: 0.0, // freeze the model
        eta_p: 0.004,
        batch_size: 4,
        loss_batch: 64,
        weight_update_model: Default::default(),
        quantizer: Default::default(),
        dropout: 0.0,
        tau2_per_edge: None,
        opts: RunOpts {
            eval_every: 0,
            parallelism: Parallelism::Rayon,
            trace: false,
            ..Default::default()
        },
    };
    let r = HierMinimax::new(cfg).run(&fp, 4);
    // The model never moved.
    let w0 = {
        use hierminimax::data::rng::{Purpose, StreamKey, StreamRng};
        fp.model.init_params(&mut StreamRng::for_key(StreamKey::new(
            4,
            Purpose::Init,
            0,
            0,
        )))
    };
    assert_eq!(r.final_w, w0, "eta_w = 0 must freeze the model");
    // p concentrates on the arg-max-loss edge.
    let losses = fp.edge_losses(&w0);
    let hardest = losses
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .expect("non-empty")
        .0;
    let p_max = r
        .final_p
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .expect("non-empty")
        .0;
    assert_eq!(
        p_max, hardest,
        "p {:?} did not concentrate on max-loss edge (losses {:?})",
        r.final_p, losses
    );
    assert!(r.final_p[hardest] > 0.5, "ascent too weak: {:?}", r.final_p);
}

/// Every algorithm drives the uniform-weight objective down on an easy
/// problem (basic sanity beyond the per-crate unit tests: this exercises
/// the full stack end to end through the umbrella crate).
#[test]
fn all_methods_learn_tiny_problem_to_high_accuracy() {
    use hierminimax::core::algorithms::{
        AflConfig, Drfa, DrfaConfig, FedAvg, FedAvgConfig, StochasticAfl,
    };
    let sc = tiny_problem(3, 2, 32);
    let fp = FederatedProblem::logistic_from_scenario(&sc);
    let opts = RunOpts {
        eval_every: 0,
        parallelism: Parallelism::Rayon,
        trace: false,
        ..Default::default()
    };
    let algs: Vec<Box<dyn Algorithm>> = vec![
        Box::new(HierMinimax::new(HierMinimaxConfig {
            rounds: 200,
            m_edges: 2,
            eta_w: 0.1,
            eta_p: 0.002,
            opts: opts.clone(),
            ..Default::default()
        })),
        Box::new(HierFavg::new(HierFavgConfig {
            rounds: 200,
            m_edges: 2,
            eta_w: 0.1,
            opts: opts.clone(),
            ..Default::default()
        })),
        Box::new(FedAvg::new(FedAvgConfig {
            rounds: 400,
            m_clients: 4,
            eta_w: 0.1,
            opts: opts.clone(),
            ..Default::default()
        })),
        Box::new(StochasticAfl::new(AflConfig {
            rounds: 800,
            m_clients: 4,
            eta_w: 0.1,
            eta_q: 0.002,
            opts: opts.clone(),
            ..Default::default()
        })),
        Box::new(Drfa::new(DrfaConfig {
            rounds: 400,
            m_clients: 4,
            eta_w: 0.1,
            eta_q: 0.002,
            opts: opts.clone(),
            ..Default::default()
        })),
    ];
    for alg in algs {
        let r = alg.run(&fp, 1);
        let e = evaluate(&fp, &r.final_w, Parallelism::Rayon);
        assert!(
            e.average > 0.9,
            "{} only reached {:.3} average accuracy",
            alg.name(),
            e.average
        );
    }
}
