//! Workspace-level determinism guarantees (DESIGN.md §7): every algorithm
//! produces bit-identical results across (a) repeated runs, (b) sequential
//! vs rayon-parallel client execution, and (c) the barrier vs chained
//! round-scheduling engines — including under injected faults.

use hierminimax::core::algorithms::{
    AflConfig, Algorithm, Drfa, DrfaConfig, FedAvg, FedAvgConfig, HierFavg, HierFavgConfig,
    HierMinimax, HierMinimaxConfig, MultiLevelConfig, MultiLevelMinimax, OverselectConfig,
    OverselectMinimax, RunOpts, StochasticAfl,
};
use hierminimax::core::problem::FederatedProblem;
use hierminimax::core::RunResult;
use hierminimax::data::scenarios::tiny_problem;
use hierminimax::simnet::{ExecEngine, FaultPlan, Parallelism};

fn opts(par: Parallelism) -> RunOpts {
    RunOpts {
        eval_every: 2,
        parallelism: par,
        trace: false,
        ..Default::default()
    }
}

fn all_algorithms(par: Parallelism) -> Vec<(&'static str, Box<dyn Algorithm>)> {
    vec![
        (
            "HierMinimax",
            Box::new(HierMinimax::new(HierMinimaxConfig {
                rounds: 5,
                tau1: 2,
                tau2: 3,
                m_edges: 2,
                eta_w: 0.1,
                eta_p: 0.05,
                batch_size: 2,
                loss_batch: 4,
                weight_update_model: Default::default(),
                quantizer: Default::default(),
                dropout: 0.0,
                tau2_per_edge: None,
                opts: opts(par),
            })),
        ),
        (
            "HierFAVG",
            Box::new(HierFavg::new(HierFavgConfig {
                rounds: 5,
                tau1: 2,
                tau2: 3,
                m_edges: 2,
                eta_w: 0.1,
                batch_size: 2,
                quantizer: Default::default(),
                dropout: 0.0,
                opts: opts(par),
            })),
        ),
        (
            "FedAvg",
            Box::new(FedAvg::new(FedAvgConfig {
                rounds: 5,
                tau1: 2,
                m_clients: 4,
                eta_w: 0.1,
                batch_size: 2,
                opts: opts(par),
            })),
        ),
        (
            "Stochastic-AFL",
            Box::new(StochasticAfl::new(AflConfig {
                rounds: 5,
                m_clients: 4,
                eta_w: 0.1,
                eta_q: 0.05,
                batch_size: 2,
                loss_batch: 4,
                opts: opts(par),
            })),
        ),
        (
            "DRFA",
            Box::new(Drfa::new(DrfaConfig {
                rounds: 5,
                tau1: 2,
                m_clients: 4,
                eta_w: 0.1,
                eta_q: 0.05,
                batch_size: 2,
                loss_batch: 4,
                opts: opts(par),
            })),
        ),
    ]
}

fn assert_identical(name: &str, a: &RunResult, b: &RunResult) {
    assert_eq!(a.final_w, b.final_w, "{name}: final_w differs");
    assert_eq!(a.final_p, b.final_p, "{name}: final_p differs");
    assert_eq!(a.avg_w, b.avg_w, "{name}: avg_w differs");
    assert_eq!(a.comm, b.comm, "{name}: comm stats differ");
    assert_eq!(a.faults, b.faults, "{name}: fault stats differ");
    for (ra, rb) in a.history.rounds.iter().zip(&b.history.rounds) {
        assert_eq!(
            ra.p, rb.p,
            "{name}: history p differs at round {}",
            ra.round
        );
        assert_eq!(
            ra.eval.as_ref().map(|e| e.per_edge_accuracy.clone()),
            rb.eval.as_ref().map(|e| e.per_edge_accuracy.clone()),
            "{name}: eval differs at round {}",
            ra.round
        );
    }
}

#[test]
fn repeated_runs_are_bit_identical() {
    let sc = tiny_problem(3, 2, 11);
    let fp = FederatedProblem::logistic_from_scenario(&sc);
    for (name, alg) in all_algorithms(Parallelism::Sequential) {
        let a = alg.run(&fp, 5);
        let b = alg.run(&fp, 5);
        assert_identical(name, &a, &b);
    }
}

#[test]
fn parallel_matches_sequential_for_every_algorithm() {
    let sc = tiny_problem(3, 2, 12);
    let fp = FederatedProblem::logistic_from_scenario(&sc);
    let seq = all_algorithms(Parallelism::Sequential);
    let par = all_algorithms(Parallelism::Rayon);
    for ((name, a), (_, b)) in seq.into_iter().zip(par) {
        let ra = a.run(&fp, 9);
        let rb = b.run(&fp, 9);
        assert_identical(name, &ra, &rb);
    }
}

#[test]
fn parallel_matches_sequential_for_mlp() {
    // Non-convex path: exercises the MLP backward pass under rayon.
    let sc = tiny_problem(3, 2, 13);
    let fp = FederatedProblem::mlp_from_scenario(&sc, &[12, 6]);
    let cfg = |par| HierMinimaxConfig {
        rounds: 4,
        tau1: 2,
        tau2: 2,
        m_edges: 2,
        eta_w: 0.05,
        eta_p: 0.02,
        batch_size: 2,
        loss_batch: 4,
        weight_update_model: Default::default(),
        quantizer: Default::default(),
        dropout: 0.0,
        tau2_per_edge: None,
        opts: opts(par),
    };
    let a = HierMinimax::new(cfg(Parallelism::Sequential)).run(&fp, 3);
    let b = HierMinimax::new(cfg(Parallelism::Rayon)).run(&fp, 3);
    assert_identical("HierMinimax-MLP", &a, &b);
}

#[test]
fn workspace_grad_is_bit_identical_to_legacy_path() {
    // `loss_grad_ws` with a long-lived workspace must be bit-identical to
    // `loss_grad` (which allocates fresh scratch every call), for every
    // in-tree model. The workspace is REUSED across calls with varying
    // batch sizes and parameters — exactly the hot-loop pattern of
    // `local_sgd` — so stale-buffer bugs (undersized or leftover scratch
    // contents influencing a later call) fail this test. Running the same
    // comparison under `Parallelism::Rayon` exercises the kernels' parallel
    // paths from worker threads.
    use hierminimax::data::rng::{Purpose, StreamKey};
    use hierminimax::data::{Dataset, StreamRng};
    use hierminimax::nn::{Mlp, Model, MulticlassLogistic, SimpleCnn, Workspace};
    use hierminimax::tensor::Matrix;

    fn batch_of(dim: usize, classes: usize, n: usize, seed: u64) -> Dataset {
        let mut rng = StreamRng::for_key(StreamKey::new(seed, Purpose::Misc, n as u64, 0));
        let x = Matrix::from_fn(n, dim, |_, _| rng.normal() as f32 * 0.6);
        let y = (0..n).map(|_| rng.below(classes)).collect();
        Dataset::new(x, y, classes)
    }

    let models: Vec<(&str, Box<dyn Model>, usize, usize)> = vec![
        ("logistic", Box::new(MulticlassLogistic::new(16, 4)), 16, 4),
        ("mlp", Box::new(Mlp::new(16, &[12, 8], 4)), 16, 4),
        ("cnn", Box::new(SimpleCnn::new(10, 3, 2, 3, 16, 3)), 100, 3),
    ];

    for par in [Parallelism::Sequential, Parallelism::Rayon] {
        par.map_ref(&models, |(name, model, dim, classes)| {
            let mut ws = Workspace::new(); // one workspace for all 5 calls
            let mut g_ws = vec![0.0_f32; model.num_params()];
            let mut g_legacy = vec![0.0_f32; model.num_params()];
            // Batch sizes deliberately shrink and grow so buffer resizes in
            // both directions are covered.
            for (call, &n) in [5usize, 2, 7, 1, 4].iter().enumerate() {
                let batch = batch_of(*dim, *classes, n, 31 + call as u64);
                let mut rng = StreamRng::for_key(StreamKey::new(77, Purpose::Init, call as u64, 0));
                let params: Vec<f32> = (0..model.num_params())
                    .map(|_| rng.normal() as f32 * 0.3)
                    .collect();
                let l_ws = model.loss_grad_ws(&params, &batch, &mut g_ws, &mut ws);
                let l_legacy = model.loss_grad(&params, &batch, &mut g_legacy);
                assert_eq!(
                    l_ws.to_bits(),
                    l_legacy.to_bits(),
                    "{name} ({par:?}): loss differs on call {call}"
                );
                assert_eq!(
                    g_ws, g_legacy,
                    "{name} ({par:?}): gradient differs on call {call}"
                );
            }
        });
    }
}

/// The four hierarchical algorithms (the ones with a `τ2`-block structure,
/// i.e. the ones the execution engine applies to), parameterised by
/// parallelism × engine.
fn hierarchical_algorithms(
    par: Parallelism,
    engine: ExecEngine,
    fault: &FaultPlan,
) -> Vec<(&'static str, Box<dyn Algorithm>)> {
    let opts = RunOpts {
        eval_every: 2,
        parallelism: par,
        engine,
        fault: fault.clone(),
        ..Default::default()
    };
    vec![
        (
            "HierMinimax",
            Box::new(HierMinimax::new(HierMinimaxConfig {
                rounds: 4,
                tau1: 2,
                tau2: 3,
                m_edges: 2,
                eta_w: 0.1,
                eta_p: 0.05,
                batch_size: 2,
                loss_batch: 4,
                weight_update_model: Default::default(),
                quantizer: Default::default(),
                dropout: 0.0,
                tau2_per_edge: None,
                opts: opts.clone(),
            })),
        ),
        (
            "HierFAVG",
            Box::new(HierFavg::new(HierFavgConfig {
                rounds: 4,
                tau1: 2,
                tau2: 3,
                m_edges: 2,
                eta_w: 0.1,
                batch_size: 2,
                quantizer: Default::default(),
                dropout: 0.0,
                opts: opts.clone(),
            })),
        ),
        (
            "MultiLevelMinimax",
            Box::new(MultiLevelMinimax::new(MultiLevelConfig {
                rounds: 3,
                tau1: 2,
                tau2: 2,
                upper: Default::default(),
                m_groups: 2,
                eta_w: 0.05,
                eta_p: 0.02,
                batch_size: 2,
                loss_batch: 4,
                dropout: 0.0,
                opts: opts.clone(),
            })),
        ),
        (
            "Overselect",
            Box::new(OverselectMinimax::new(OverselectConfig {
                rounds: 3,
                tau1: 2,
                tau2: 2,
                m_edges: 2,
                m_over: 3,
                seconds_per_slot: vec![1.0, 1.5, 2.0, 1.2],
                eta_w: 0.1,
                eta_p: 0.05,
                batch_size: 2,
                loss_batch: 4,
                dropout: 0.0,
                opts,
            })),
        ),
    ]
}

#[test]
fn chained_engine_matches_barrier_for_every_hierarchical_algorithm() {
    // The tentpole invariant at the full-run level: the chained scheduler
    // (one task chain per edge, pooled scratch, fused aggregation, batched
    // metering) is bit-identical to the legacy per-block barrier engine —
    // models, weights, comm totals, history — for every hierarchical
    // algorithm, fault-free and under the chaos preset, under both
    // executors.
    let sc = tiny_problem(4, 2, 21);
    let fp = FederatedProblem::logistic_from_scenario(&sc);
    let plans = [
        ("none", FaultPlan::preset("none").unwrap()),
        ("chaos", FaultPlan::preset("chaos").unwrap()),
    ];
    for (plan_name, plan) in &plans {
        for par in [Parallelism::Sequential, Parallelism::Rayon] {
            let chained = hierarchical_algorithms(par, ExecEngine::Chained, plan);
            let barrier = hierarchical_algorithms(par, ExecEngine::Barrier, plan);
            for ((name, a), (_, b)) in chained.into_iter().zip(barrier) {
                let ra = a.run(&fp, 17);
                let rb = b.run(&fp, 17);
                assert_identical(&format!("{name} [{plan_name}, {par:?}]"), &ra, &rb);
            }
        }
    }
}

#[test]
fn different_seeds_differ() {
    let sc = tiny_problem(3, 2, 14);
    let fp = FederatedProblem::logistic_from_scenario(&sc);
    for (name, alg) in all_algorithms(Parallelism::Sequential) {
        let a = alg.run(&fp, 1);
        let b = alg.run(&fp, 2);
        assert_ne!(a.final_w, b.final_w, "{name}: seeds do not change the run");
    }
}
