//! Statistical properties of the algorithm's estimators, verified by
//! Monte-Carlo at the integration level:
//!
//! - the Phase-2 weight-gradient estimate `v` is unbiased for
//!   `∇_p F(w, ·) = [f_1(w), …, f_{N_E}(w)]` (Appendix A), and
//! - the checkpoint index covers all `τ1 τ2` intermediate models uniformly,
//!   which is what makes the *time* dimension of the estimate unbiased.

use hierminimax::core::localsgd::estimate_loss;
use hierminimax::core::problem::FederatedProblem;
use hierminimax::data::rng::{Purpose, StreamKey, StreamRng};
use hierminimax::data::scenarios::tiny_problem;
use hierminimax::simnet::sampling::{sample_checkpoint, sample_edges_uniform};

/// Monte-Carlo check that the constructed v is unbiased: averaging the
/// importance-weighted estimates over many independent Phase-2 draws must
/// converge to the true per-edge losses.
#[test]
fn phase2_gradient_estimate_is_unbiased() {
    let sc = tiny_problem(5, 2, 61);
    let fp = FederatedProblem::logistic_from_scenario(&sc);
    let n_edges = fp.num_edges();
    let n0 = fp.clients_per_edge();
    let m_e = 2usize;
    let w = vec![0.03_f32; fp.num_params()];

    // Ground truth: full-data edge losses.
    let truth = fp.edge_losses(&w);

    let trials = 4000usize;
    let mut acc = vec![0.0_f64; n_edges];
    for t in 0..trials {
        let mut u_rng = StreamRng::for_key(StreamKey::new(
            99,
            Purpose::LossEstSampling,
            t as u64,
            u64::MAX,
        ));
        let u_set = sample_edges_uniform(n_edges, m_e, &mut u_rng);
        for &e in &u_set {
            // f_e estimate: average of client mini-batch losses.
            let mut fe = 0.0_f64;
            for c in 0..n0 {
                let client = fp.topology().client_id(e, c);
                let mut rng = StreamRng::for_key(StreamKey::new(
                    99,
                    Purpose::LossEstSampling,
                    t as u64,
                    client as u64,
                ));
                fe += estimate_loss(&*fp.model, fp.client_data(e, c), &w, 4, &mut rng);
            }
            fe /= n0 as f64;
            acc[e] += (n_edges as f64 / m_e as f64) * fe;
        }
    }
    for e in 0..n_edges {
        let mean = acc[e] / trials as f64;
        let rel = (mean - truth[e]).abs() / truth[e].max(1e-9);
        assert!(
            rel < 0.05,
            "edge {e}: Monte-Carlo mean {mean:.4} vs truth {:.4} (rel err {rel:.3})",
            truth[e]
        );
    }
}

/// The loss estimator at a client is itself unbiased for the client's
/// full-data loss.
#[test]
fn client_loss_estimator_is_unbiased() {
    let sc = tiny_problem(3, 2, 62);
    let fp = FederatedProblem::logistic_from_scenario(&sc);
    let w = vec![-0.02_f32; fp.num_params()];
    let data = fp.client_data(1, 0);
    let truth = fp.model.loss(&w, data);
    let trials = 3000;
    let mut acc = 0.0;
    for t in 0..trials {
        let mut rng = StreamRng::for_key(StreamKey::new(7, Purpose::Misc, t, 0));
        acc += estimate_loss(&*fp.model, data, &w, 2, &mut rng);
    }
    let mean = acc / trials as f64;
    assert!(
        (mean - truth).abs() / truth < 0.03,
        "estimator mean {mean:.4} vs truth {truth:.4}"
    );
}

/// Chi-squared-style uniformity check of the checkpoint sampler over the
/// τ1 × τ2 grid (the time-uniformity half of the unbiasedness argument).
#[test]
fn checkpoint_sampler_is_uniform_on_the_grid() {
    let (tau1, tau2) = (4usize, 3usize);
    let cells = tau1 * tau2;
    let trials = 120_000usize;
    let mut counts = vec![0usize; cells];
    for t in 0..trials {
        let mut rng = StreamRng::for_key(StreamKey::new(3, Purpose::Checkpoint, t as u64, 0));
        let (c1, c2) = sample_checkpoint(tau1, tau2, &mut rng);
        counts[c2 * tau1 + c1] += 1;
    }
    let expected = trials as f64 / cells as f64;
    let chi2: f64 = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum();
    // 11 degrees of freedom; χ² < 35 is far beyond the 99.9th percentile
    // (~31.3), so a pass is overwhelming evidence of uniformity while the
    // test stays deterministic (fixed stream).
    assert!(
        chi2 < 35.0,
        "chi-squared {chi2:.1} too large; counts {counts:?}"
    );
}
