//! Checkpoint/resume bit-identity matrix (DESIGN.md §12).
//!
//! The headline guarantee of the checkpoint subsystem, enforced here
//! rather than in prose: a run killed at **any** cloud round and resumed
//! from its snapshot is bit-identical to the uninterrupted run — same
//! `RunResult` (model, weights, history, comm totals), same `FaultStats`,
//! and the same telemetry stream once the killed run's prefix and the
//! resumed run's suffix are spliced at the `checkpoint` event.
//!
//! HierMinimax runs the full `{Sequential, Rayon} × {Chained, Barrier} ×
//! {none, chaos}` grid with a kill at every checkpointed round; the other
//! eight algorithms run the kill-at-every-round sweep on the reduced grid
//! (the flat baselines ignore the engine and the fault plan by design),
//! with a chaos × Rayon × engine spot-check for the remaining
//! hierarchical ones.

use hierminimax::checkpoint::{read_snapshot, snapshot_path, Snapshot};
use hierminimax::core::algorithms::{
    AflConfig, Algorithm, Drfa, DrfaConfig, FedAvg, FedAvgConfig, FedProx, FedProxConfig, HierFavg,
    HierFavgConfig, HierMinimax, HierMinimaxConfig, MultiLevelConfig, MultiLevelMinimax,
    OverselectConfig, OverselectMinimax, QFedAvg, QfflConfig, RunOpts, StochasticAfl,
};
use hierminimax::core::problem::FederatedProblem;
use hierminimax::core::{CheckpointOpts, RunResult};
use hierminimax::data::scenarios::tiny_problem;
use hierminimax::simnet::{ExecEngine, FaultPlan, Parallelism};
use hierminimax::telemetry::{MemorySink, Telemetry, TelemetryEvent};
use std::path::PathBuf;
use std::sync::Arc;

const SEED: u64 = 17;
const ROUNDS: usize = 4;

fn problem() -> FederatedProblem {
    let sc = tiny_problem(3, 2, 11);
    FederatedProblem::logistic_from_scenario(&sc)
}

/// Fresh scratch directory under the system temp dir; removed by the
/// caller when the matrix cell is done.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hm-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

type Factory = Box<dyn Fn(RunOpts) -> Box<dyn Algorithm>>;

/// Every algorithm in the workspace, as a factory over `RunOpts` so the
/// same config can be instantiated for the writer, plain, and resumed
/// legs. The bool marks algorithms that emit a telemetry stream (the
/// minimization-only FedProx/q-FedAvg/Overselect paths do not).
fn all_algorithms() -> Vec<(&'static str, bool, Factory)> {
    vec![
        (
            "HierMinimax",
            true,
            Box::new(|opts| {
                Box::new(HierMinimax::new(HierMinimaxConfig {
                    rounds: ROUNDS,
                    tau1: 2,
                    tau2: 3,
                    m_edges: 2,
                    eta_w: 0.1,
                    eta_p: 0.05,
                    batch_size: 2,
                    loss_batch: 4,
                    weight_update_model: Default::default(),
                    quantizer: Default::default(),
                    dropout: 0.0,
                    tau2_per_edge: None,
                    opts,
                })) as Box<dyn Algorithm>
            }),
        ),
        (
            "HierFAVG",
            true,
            Box::new(|opts| {
                Box::new(HierFavg::new(HierFavgConfig {
                    rounds: ROUNDS,
                    tau1: 2,
                    tau2: 3,
                    m_edges: 2,
                    eta_w: 0.1,
                    batch_size: 2,
                    quantizer: Default::default(),
                    dropout: 0.0,
                    opts,
                })) as Box<dyn Algorithm>
            }),
        ),
        (
            "MultiLevelMinimax",
            true,
            Box::new(|opts| {
                Box::new(MultiLevelMinimax::new(MultiLevelConfig {
                    rounds: ROUNDS,
                    tau1: 2,
                    tau2: 2,
                    upper: Default::default(),
                    m_groups: 2,
                    eta_w: 0.05,
                    eta_p: 0.02,
                    batch_size: 2,
                    loss_batch: 4,
                    dropout: 0.0,
                    opts,
                })) as Box<dyn Algorithm>
            }),
        ),
        (
            "Overselect",
            false,
            Box::new(|opts| {
                Box::new(OverselectMinimax::new(OverselectConfig {
                    rounds: ROUNDS,
                    tau1: 2,
                    tau2: 2,
                    m_edges: 2,
                    m_over: 3,
                    seconds_per_slot: vec![1.0, 1.5, 2.0],
                    eta_w: 0.1,
                    eta_p: 0.05,
                    batch_size: 2,
                    loss_batch: 4,
                    dropout: 0.0,
                    opts,
                })) as Box<dyn Algorithm>
            }),
        ),
        (
            "FedAvg",
            true,
            Box::new(|opts| {
                Box::new(FedAvg::new(FedAvgConfig {
                    rounds: ROUNDS,
                    tau1: 2,
                    m_clients: 4,
                    eta_w: 0.1,
                    batch_size: 2,
                    opts,
                })) as Box<dyn Algorithm>
            }),
        ),
        (
            "FedProx",
            false,
            Box::new(|opts| {
                Box::new(FedProx::new(FedProxConfig {
                    rounds: ROUNDS,
                    tau1: 2,
                    m_clients: 4,
                    mu: 0.1,
                    eta_w: 0.1,
                    batch_size: 2,
                    opts,
                })) as Box<dyn Algorithm>
            }),
        ),
        (
            "Stochastic-AFL",
            true,
            Box::new(|opts| {
                Box::new(StochasticAfl::new(AflConfig {
                    rounds: ROUNDS,
                    m_clients: 4,
                    eta_w: 0.1,
                    eta_q: 0.05,
                    batch_size: 2,
                    loss_batch: 4,
                    opts,
                })) as Box<dyn Algorithm>
            }),
        ),
        (
            "DRFA",
            true,
            Box::new(|opts| {
                Box::new(Drfa::new(DrfaConfig {
                    rounds: ROUNDS,
                    tau1: 2,
                    m_clients: 4,
                    eta_w: 0.1,
                    eta_q: 0.05,
                    batch_size: 2,
                    loss_batch: 4,
                    opts,
                })) as Box<dyn Algorithm>
            }),
        ),
        (
            "q-FedAvg",
            false,
            Box::new(|opts| {
                Box::new(QFedAvg::new(QfflConfig {
                    rounds: ROUNDS,
                    tau1: 2,
                    m_clients: 4,
                    q: 1.0,
                    eta_w: 0.1,
                    batch_size: 2,
                    loss_batch: 4,
                    opts,
                })) as Box<dyn Algorithm>
            }),
        ),
    ]
}

fn assert_identical(tag: &str, a: &RunResult, b: &RunResult) {
    assert_eq!(a.final_w, b.final_w, "{tag}: final_w differs");
    assert_eq!(a.avg_w, b.avg_w, "{tag}: avg_w differs");
    assert_eq!(a.final_p, b.final_p, "{tag}: final_p differs");
    assert_eq!(a.avg_p, b.avg_p, "{tag}: avg_p differs");
    assert_eq!(a.history, b.history, "{tag}: history differs");
    assert_eq!(a.comm, b.comm, "{tag}: comm stats differ");
    assert_eq!(a.faults, b.faults, "{tag}: fault stats differ");
}

/// Zero the wall-clock fields — the only payloads that are not a pure
/// function of the run — so streams can be compared bit-for-bit.
fn scrub(mut ev: TelemetryEvent) -> TelemetryEvent {
    match &mut ev {
        TelemetryEvent::Phase1Done { elapsed_s, .. }
        | TelemetryEvent::DualUpdate { elapsed_s, .. }
        | TelemetryEvent::RoundEnd { elapsed_s, .. }
        | TelemetryEvent::RunEnd { elapsed_s, .. } => *elapsed_s = 0.0,
        _ => {}
    }
    ev
}

/// Canonical JSONL digest of a stream with wall-clock scrubbed; equal
/// digests = equal streams (serialization has fixed key order).
fn stream_digest(events: &[TelemetryEvent]) -> String {
    events
        .iter()
        .map(|e| scrub(e.clone()).to_json())
        .collect::<Vec<_>>()
        .join("\n")
}

/// Splice the killed run's telemetry prefix (everything through the
/// `checkpoint` event the resume is based on) with the resumed run's
/// stream (its unsequenced `run_resume` preamble dropped).
fn spliced_stream(
    writer: &[TelemetryEvent],
    resumed: &[TelemetryEvent],
    kill: usize,
) -> Vec<TelemetryEvent> {
    let cut = writer
        .iter()
        .position(|e| matches!(e, TelemetryEvent::Checkpoint { round, .. } if *round + 1 == kill))
        .unwrap_or_else(|| panic!("writer stream lacks the round-{kill} checkpoint event"))
        + 1;
    match resumed.first() {
        Some(TelemetryEvent::RunResume { next_round, .. }) if *next_round == kill => {}
        other => panic!("resumed stream must open with run_resume at round {kill}, got {other:?}"),
    }
    let mut out = writer[..cut].to_vec();
    out.extend_from_slice(&resumed[1..]);
    out
}

/// One matrix cell: run `factory` uninterrupted with per-round
/// checkpoints, then for every snapshot on disk resume from it and assert
/// the `RunResult` (and, when the algorithm emits telemetry, the spliced
/// stream) is bit-identical to the uninterrupted run.
fn assert_resume_bit_identity(
    tag: &str,
    name: &str,
    has_telemetry: bool,
    factory: &Factory,
    base: &RunOpts,
) {
    let fp = problem();
    let dir = scratch_dir(&format!("{tag}-w"));
    let dir_r = scratch_dir(&format!("{tag}-r"));

    // Uninterrupted run, writing a snapshot after every round.
    let writer_sink = Arc::new(MemorySink::new());
    let mut writer_opts = base.clone();
    writer_opts.checkpoint = CheckpointOpts::writing(&dir, 1);
    if has_telemetry {
        writer_opts.telemetry = Telemetry::with_sink(writer_sink.clone());
    }
    let full = factory(writer_opts).run(&fp, SEED);

    // Checkpointing must not perturb the run.
    let plain = factory(base.clone()).run(&fp, SEED);
    assert_identical(
        &format!("{tag}: checkpointing perturbed the run"),
        &plain,
        &full,
    );

    // Kill at every checkpointed round (the final round is never
    // snapshotted — resuming it would be a no-op run).
    for kill in 1..ROUNDS {
        let snap = read_snapshot(&snapshot_path(&dir, name, kill))
            .unwrap_or_else(|e| panic!("{tag}: reading round-{kill} snapshot: {e}"));
        let resumed_sink = Arc::new(MemorySink::new());
        let mut resumed_opts = base.clone();
        // Keep writing snapshots after the resume so the spliced stream
        // carries the same `checkpoint` events as the uninterrupted one.
        resumed_opts.checkpoint = CheckpointOpts::writing(&dir_r, 1);
        resumed_opts.checkpoint.resume = Some(Arc::new(snap));
        if has_telemetry {
            resumed_opts.telemetry = Telemetry::with_sink(resumed_sink.clone());
        }
        let resumed = factory(resumed_opts).run(&fp, SEED);
        assert_identical(&format!("{tag}: kill at round {kill}"), &full, &resumed);
        if has_telemetry {
            let spliced = spliced_stream(&writer_sink.events(), &resumed_sink.events(), kill);
            assert_eq!(
                stream_digest(&spliced),
                stream_digest(&writer_sink.events()),
                "{tag}: spliced telemetry differs at kill round {kill}"
            );
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir_r);
}

fn opts(par: Parallelism, engine: ExecEngine, fault: &FaultPlan) -> RunOpts {
    RunOpts {
        eval_every: 2,
        parallelism: par,
        trace: false,
        fault: fault.clone(),
        engine,
        ..Default::default()
    }
}

#[test]
fn hierminimax_resume_matrix_full_grid() {
    let (name, has_tel, factory) = all_algorithms().swap_remove(0);
    assert_eq!(name, "HierMinimax");
    let plans = [
        ("none", FaultPlan::preset("none").unwrap()),
        ("chaos", FaultPlan::preset("chaos").unwrap()),
    ];
    for (plan_name, plan) in &plans {
        for par in [Parallelism::Sequential, Parallelism::Rayon] {
            for engine in [ExecEngine::Chained, ExecEngine::Barrier] {
                let tag = format!("hmx-{plan_name}-{par:?}-{engine:?}").to_lowercase();
                assert_resume_bit_identity(&tag, name, has_tel, &factory, &opts(par, engine, plan));
            }
        }
    }
}

#[test]
fn every_algorithm_resumes_bit_identically() {
    // Reduced grid: the default executor cell, kill at every round, for
    // all nine algorithms (flat baselines ignore engine and fault plan).
    let none = FaultPlan::preset("none").unwrap();
    for (name, has_tel, factory) in all_algorithms() {
        let tag = format!("all-{}", name.to_lowercase().replace('-', "_"));
        assert_resume_bit_identity(
            &tag,
            name,
            has_tel,
            &factory,
            &opts(Parallelism::Sequential, ExecEngine::Chained, &none),
        );
    }
}

#[test]
fn hierarchical_algorithms_resume_under_chaos_on_rayon() {
    // Chaos spot-check for the hierarchical algorithms beyond HierMinimax
    // (which already runs the full grid): faults must restore across the
    // resume boundary under both engines on the rayon executor.
    let chaos = FaultPlan::preset("chaos").unwrap();
    for (name, has_tel, factory) in all_algorithms() {
        if !matches!(name, "HierFAVG" | "MultiLevelMinimax" | "Overselect") {
            continue;
        }
        for engine in [ExecEngine::Chained, ExecEngine::Barrier] {
            let tag = format!("chaos-{}-{engine:?}", name.to_lowercase()).to_lowercase();
            assert_resume_bit_identity(
                &tag,
                name,
                has_tel,
                &factory,
                &opts(Parallelism::Rayon, engine, &chaos),
            );
        }
    }
}

// ---- Cadence contract: the final round is never snapshotted. -------------

#[test]
fn final_round_snapshot_is_never_written() {
    // `--checkpoint-every N` writes a snapshot after every N-th completed
    // cloud round EXCEPT the final one: a run that finished has nothing
    // left to resume, so a final-round snapshot would only waste I/O and
    // invite a no-op resume. Pin the contract with a cadence that lands
    // exactly on the final round.
    let fp = problem();
    let (name, _, factory) = all_algorithms().swap_remove(0);
    for every in [1, 2] {
        // ROUNDS = 4: cadence 1 is due after rounds 1..=4, cadence 2 after
        // rounds 2 and 4 — in both cases round 4 is due AND final.
        let dir = scratch_dir(&format!("final-round-{every}"));
        let mut w_opts = opts(
            Parallelism::Sequential,
            ExecEngine::Chained,
            &FaultPlan::preset("none").unwrap(),
        );
        w_opts.checkpoint = CheckpointOpts::writing(&dir, every);
        factory(w_opts).run(&fp, SEED);
        for completed in 1..=ROUNDS {
            let path = snapshot_path(&dir, name, completed);
            let due = completed % every == 0;
            let last = completed == ROUNDS;
            assert_eq!(
                path.exists(),
                due && !last,
                "cadence {every}: snapshot after round {completed} (due={due}, final={last})"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ---- Negatives: a snapshot must only resume the run it came from. -------

fn sample_snapshot() -> Snapshot {
    let fp = problem();
    let dir = scratch_dir("negative");
    let (_, _, factory) = all_algorithms().swap_remove(0);
    let mut w_opts = opts(
        Parallelism::Sequential,
        ExecEngine::Chained,
        &FaultPlan::preset("none").unwrap(),
    );
    w_opts.checkpoint = CheckpointOpts::writing(&dir, 1);
    factory(w_opts).run(&fp, SEED);
    let snap = read_snapshot(&snapshot_path(&dir, "HierMinimax", 2)).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    snap
}

#[test]
fn snapshot_validation_rejects_mismatched_runs() {
    let snap = sample_snapshot();
    snap.validate_for("HierMinimax", SEED, ROUNDS).unwrap();
    let cases = [
        ("DRFA", SEED, ROUNDS, "algorithm"),
        ("HierMinimax", SEED + 1, ROUNDS, "seed"),
        ("HierMinimax", SEED, ROUNDS + 1, "round"),
    ];
    for (alg, seed, rounds, what) in cases {
        let err = snap
            .validate_for(alg, seed, rounds)
            .expect_err("mismatched run must be rejected");
        let msg = err.to_string();
        assert!(
            msg.contains("does not match this run"),
            "expected a typed mismatch error for {what}, got: {msg}"
        );
    }
}
