//! Membership-churn test matrix (DESIGN.md §15).
//!
//! Pins the churn subsystem's headline guarantees:
//!
//! - a zero-rate plan draws nothing and is bit-identical to a run without
//!   churn (the pre-churn build);
//! - active plans are deterministic and executor/engine-invariant across
//!   the `{Sequential, Rayon} × {Chained, Barrier}` grid;
//! - a churn run killed at any checkpointed round and resumed from its
//!   snapshot (which carries the `churn` section: topology, rosters,
//!   joiner provenance, stale counter) is bit-identical to the
//!   uninterrupted run;
//! - the availability oracle: under permanent edge failures, re-homing
//!   the failed edge's clients onto survivors delivers at least 1.5× the
//!   client uploads of the stale-fallback baseline (`rehome: false`);
//! - `max_stale_rounds` aborts with the typed [`RunError`] after the
//!   configured number of consecutive all-failed rounds, and `0` never
//!   aborts.

use hierminimax::checkpoint::{read_snapshot, snapshot_path};
use hierminimax::core::algorithms::{
    Algorithm, HierFavg, HierFavgConfig, HierMinimax, HierMinimaxConfig, RunError, RunOpts,
};
use hierminimax::core::problem::FederatedProblem;
use hierminimax::core::{CheckpointOpts, RunResult};
use hierminimax::data::scenarios::tiny_problem;
use hierminimax::simnet::{ChurnPlan, ExecEngine, FaultPlan, Link, Parallelism};
use std::path::PathBuf;
use std::sync::Arc;

const SEED: u64 = 23;
const ROUNDS: usize = 8;

fn problem() -> FederatedProblem {
    let sc = tiny_problem(4, 2, 11);
    FederatedProblem::logistic_from_scenario(&sc)
}

fn opts(par: Parallelism, engine: ExecEngine, plan: &ChurnPlan) -> RunOpts {
    RunOpts {
        eval_every: 2,
        parallelism: par,
        engine,
        churn: *plan,
        ..Default::default()
    }
}

fn hmx_cfg(rounds: usize, opts: RunOpts) -> HierMinimaxConfig {
    HierMinimaxConfig {
        rounds,
        tau1: 2,
        tau2: 2,
        m_edges: 2,
        eta_w: 0.1,
        eta_p: 0.05,
        batch_size: 2,
        loss_batch: 4,
        opts,
        ..Default::default()
    }
}

fn hfa_cfg(rounds: usize, opts: RunOpts) -> HierFavgConfig {
    HierFavgConfig {
        rounds,
        tau1: 2,
        tau2: 2,
        m_edges: 2,
        eta_w: 0.1,
        batch_size: 2,
        opts,
        ..Default::default()
    }
}

fn assert_identical(tag: &str, a: &RunResult, b: &RunResult) {
    assert_eq!(a.final_w, b.final_w, "{tag}: final_w differs");
    assert_eq!(a.avg_w, b.avg_w, "{tag}: avg_w differs");
    assert_eq!(a.final_p, b.final_p, "{tag}: final_p differs");
    assert_eq!(a.avg_p, b.avg_p, "{tag}: avg_p differs");
    assert_eq!(a.history, b.history, "{tag}: history differs");
    assert_eq!(a.comm, b.comm, "{tag}: comm stats differ");
    assert_eq!(a.faults, b.faults, "{tag}: fault stats differ");
    assert_eq!(a.churn, b.churn, "{tag}: churn stats differ");
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hm-churn-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

// ---- Zero-rate plans are inert. -----------------------------------------

/// A plan whose rates are all zero makes no RNG draws, so the run is
/// bit-identical to one with no churn configured at all — the
/// compatibility contract with pre-churn builds.
#[test]
fn zero_rate_plan_is_bit_identical_to_no_churn() {
    let fp = problem();
    let zero = ChurnPlan {
        leave_rate: 0.0,
        join_rate: 0.0,
        edge_fail_rate: 0.0,
        rehome: true,
    };
    let base = opts(Parallelism::Sequential, ExecEngine::Chained, &zero);
    let plain = RunOpts {
        churn: ChurnPlan::default(),
        ..base.clone()
    };
    let with_zero = HierMinimax::new(hmx_cfg(ROUNDS, base.clone())).run(&fp, SEED);
    let without = HierMinimax::new(hmx_cfg(ROUNDS, plain.clone())).run(&fp, SEED);
    assert_identical("hierminimax zero-rate", &with_zero, &without);
    assert_eq!(with_zero.churn.total(), 0);

    let with_zero = HierFavg::new(hfa_cfg(ROUNDS, base)).run(&fp, SEED);
    let without = HierFavg::new(hfa_cfg(ROUNDS, plain)).run(&fp, SEED);
    assert_identical("hierfavg zero-rate", &with_zero, &without);
}

// ---- Executor/engine invariance. ----------------------------------------

/// Each `{Sequential, Rayon} × {Chained, Barrier}` cell produces the same
/// bits under an active plan, and re-running a cell reproduces it.
#[test]
fn churn_is_bit_identical_across_executors_and_engines() {
    let fp = problem();
    for preset in ["mild", "chaos-churn"] {
        let plan = ChurnPlan::preset(preset).unwrap();
        let mut cells: Vec<(String, RunResult)> = Vec::new();
        for par in [Parallelism::Sequential, Parallelism::Rayon] {
            for engine in [ExecEngine::Chained, ExecEngine::Barrier] {
                let tag = format!("{preset}-{par:?}-{engine:?}").to_lowercase();
                let o = opts(par, engine, &plan);
                let r = HierMinimax::new(hmx_cfg(ROUNDS, o.clone())).run(&fp, SEED);
                let again = HierMinimax::new(hmx_cfg(ROUNDS, o)).run(&fp, SEED);
                assert_identical(&format!("{tag} rerun"), &r, &again);
                cells.push((tag, r));
            }
        }
        let (ref_tag, reference) = &cells[0];
        assert!(
            reference.churn.total() > 0,
            "{preset} must actually churn over {ROUNDS} rounds"
        );
        for (tag, r) in &cells[1..] {
            assert_identical(&format!("{tag} vs {ref_tag}"), reference, r);
        }
    }
}

// ---- Checkpoint/resume bit-identity under churn. ------------------------

/// Kill at every checkpointed round under an active plan and resume: the
/// snapshot's `churn` section restores the active topology, rosters,
/// joiner shards and stale counter, so the resumed run is bit-identical.
#[test]
fn churn_run_resumes_bit_identically_from_every_round() {
    let fp = problem();
    for preset in ["edge-failover", "chaos-churn"] {
        let plan = ChurnPlan::preset(preset).unwrap();
        let base = opts(Parallelism::Sequential, ExecEngine::Chained, &plan);
        let dir = scratch_dir(&format!("{preset}-w"));
        let dir_r = scratch_dir(&format!("{preset}-r"));

        let mut writer_opts = base.clone();
        writer_opts.checkpoint = CheckpointOpts::writing(&dir, 1);
        let full = HierMinimax::new(hmx_cfg(ROUNDS, writer_opts)).run(&fp, SEED);
        assert!(full.churn.total() > 0, "{preset} must fire");

        // Checkpointing must not perturb the run.
        let plain = HierMinimax::new(hmx_cfg(ROUNDS, base.clone())).run(&fp, SEED);
        assert_identical(&format!("{preset}: checkpointing perturbed"), &plain, &full);

        for kill in 1..ROUNDS {
            let snap = read_snapshot(&snapshot_path(&dir, "HierMinimax", kill))
                .unwrap_or_else(|e| panic!("{preset}: reading round-{kill} snapshot: {e}"));
            let mut resumed_opts = base.clone();
            resumed_opts.checkpoint = CheckpointOpts::writing(&dir_r, 1);
            resumed_opts.checkpoint.resume = Some(Arc::new(snap));
            let resumed = HierMinimax::new(hmx_cfg(ROUNDS, resumed_opts)).run(&fp, SEED);
            assert_identical(&format!("{preset}: kill at round {kill}"), &full, &resumed);
        }

        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dir_r);
    }
}

// ---- Availability oracle. -----------------------------------------------

/// Under permanent edge failures, re-homing keeps the failed edges'
/// clients delivering through survivors; the stale-fallback baseline
/// strands them. Re-homing must restore at least 1.5× the client uploads.
#[test]
fn rehoming_restores_upload_availability() {
    let fp = problem();
    let rounds = 16;
    let fail = ChurnPlan::preset("edge-failover").unwrap();
    assert!(fail.rehome, "preset re-homes by default");
    let strand = ChurnPlan {
        rehome: false,
        ..fail
    };

    let o = |p: &ChurnPlan| opts(Parallelism::Sequential, ExecEngine::Chained, p);
    let rehomed = HierMinimax::new(hmx_cfg(rounds, o(&fail))).run(&fp, SEED);
    let stranded = HierMinimax::new(hmx_cfg(rounds, o(&strand))).run(&fp, SEED);

    assert!(rehomed.churn.rehomed > 0, "failures must re-home clients");
    assert_eq!(rehomed.churn.stranded, 0);
    assert!(stranded.churn.stranded > 0, "fallback must strand clients");
    assert_eq!(stranded.churn.rehomed, 0);
    // Identical failure draws on both sides: the rehome knob is policy,
    // not a rate, so the keyed streams coincide.
    assert_eq!(rehomed.churn.edge_failures, stranded.churn.edge_failures);

    let up_re = rehomed.comm.uplink_msgs(Link::ClientEdge);
    let up_st = stranded.comm.uplink_msgs(Link::ClientEdge);
    assert!(
        up_re as f64 >= 1.5 * up_st as f64,
        "re-homing delivered {up_re} uploads vs {up_st} stranded — below the 1.5x floor"
    );
}

// ---- max_stale_rounds. --------------------------------------------------

fn all_out_opts(max_stale_rounds: usize) -> RunOpts {
    RunOpts {
        eval_every: 2,
        fault: FaultPlan {
            edge_outage: 1.0,
            ..FaultPlan::default()
        },
        max_stale_rounds,
        ..Default::default()
    }
}

/// With every sampled edge perpetually outed, the stale counter grows
/// every round and the run aborts with the typed error exactly after
/// `limit + 1` consecutive stale rounds.
#[test]
fn stale_rounds_abort_with_typed_error() {
    let fp = problem();
    let err = HierMinimax::new(hmx_cfg(ROUNDS, all_out_opts(2)))
        .try_run(&fp, SEED)
        .unwrap_err();
    assert_eq!(
        err,
        RunError::StaleRoundsExceeded {
            round: 2,
            consecutive: 3,
            limit: 2,
        }
    );
    let err = HierFavg::new(hfa_cfg(ROUNDS, all_out_opts(1)))
        .try_run(&fp, SEED)
        .unwrap_err();
    assert_eq!(
        err,
        RunError::StaleRoundsExceeded {
            round: 1,
            consecutive: 2,
            limit: 1,
        }
    );
}

/// `max_stale_rounds: 0` disables the cap: a fully-outed run limps to the
/// end on the stale-round path instead of aborting.
#[test]
fn zero_stale_limit_never_aborts() {
    let fp = problem();
    let r = HierMinimax::new(hmx_cfg(ROUNDS, all_out_opts(0)))
        .try_run(&fp, SEED)
        .unwrap();
    assert_eq!(r.history.rounds.len(), ROUNDS);
}
