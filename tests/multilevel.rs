//! Integration tests of the multi-level (≥4-layer) generalisation.

use hierminimax::core::algorithms::{
    Algorithm, MultiLevelConfig, MultiLevelMinimax, RunOpts, UpperLevel,
};
use hierminimax::core::metrics::evaluate;
use hierminimax::core::problem::FederatedProblem;
use hierminimax::data::generators::synthetic_images::ImageConfig;
use hierminimax::data::scenarios::{linear_sizes, one_class_per_edge_sized};
use hierminimax::simnet::{Link, Parallelism};

fn problem(edges: usize) -> FederatedProblem {
    let cfg = ImageConfig {
        side: 8,
        num_classes: edges,
        bumps_per_class: 3,
        separation: 1.0,
        noise: 0.3,
        prototype_overlap: 0.0,
        pair_similarity: 0.0,
        noise_spread: 0.2,
        separation_spread: 0.4,
    };
    let sizes = linear_sizes(30, 0.3, edges);
    let sc = one_class_per_edge_sized(cfg, edges, 2, &sizes, 100, 71);
    FederatedProblem::logistic_from_scenario(&sc)
}

fn cfg(upper: Vec<UpperLevel>, rounds: usize) -> MultiLevelConfig {
    MultiLevelConfig {
        rounds,
        tau1: 2,
        tau2: 2,
        upper,
        m_groups: 2,
        eta_w: 0.05,
        eta_p: 0.005,
        batch_size: 2,
        loss_batch: 8,
        dropout: 0.0,
        opts: RunOpts {
            eval_every: 0,
            parallelism: Parallelism::Rayon,
            trace: false,
            ..Default::default()
        },
    }
}

#[test]
fn deeper_tree_trades_cloud_rounds_for_local_rounds() {
    let fp = problem(8);
    let slots = 1600;
    let three = cfg(vec![], slots / 4);
    let four = cfg(
        vec![UpperLevel {
            group_size: 4,
            tau: 2,
        }],
        slots / 8,
    );
    let r3 = MultiLevelMinimax::new(three).run(&fp, 5);
    let r4 = MultiLevelMinimax::new(four).run(&fp, 5);
    // Matched slot budgets.
    assert_eq!(
        r3.history.rounds.last().unwrap().slots_done,
        r4.history.rounds.last().unwrap().slots_done
    );
    // The 4-layer tree halves cloud rounds and adds local rounds.
    assert_eq!(r4.comm.cloud_rounds() * 2, r3.comm.cloud_rounds());
    assert!(r4.comm.rounds(Link::ClientEdge) > r3.comm.rounds(Link::ClientEdge));
}

#[test]
fn four_layer_still_learns_to_high_accuracy() {
    let fp = problem(4);
    let r = MultiLevelMinimax::new(cfg(
        vec![UpperLevel {
            group_size: 2,
            tau: 2,
        }],
        300,
    ))
    .run(&fp, 7);
    let e = evaluate(&fp, &r.final_w, Parallelism::Rayon);
    assert!(
        e.average > 0.85,
        "4-layer run only reached {:.3}",
        e.average
    );
}

#[test]
fn group_weights_track_group_losses_when_frozen() {
    // Frozen-model vertex-climb at the group level (the multi-level
    // analogue of the Phase-2 property test for HierMinimax).
    let fp = {
        let sc = hierminimax::data::scenarios::tiny_problem(4, 2, 72);
        FederatedProblem::mlp_from_scenario(&sc, &[6])
    };
    let mut c = cfg(
        vec![UpperLevel {
            group_size: 2,
            tau: 2,
        }],
        1200,
    );
    c.eta_w = 0.0;
    c.eta_p = 0.004;
    c.loss_batch = 64;
    let alg = MultiLevelMinimax::new(c);
    let r = alg.run(&fp, 4);
    // Group losses at the (frozen) init model.
    let losses = fp.edge_losses(&r.final_w);
    let g0 = (losses[0] + losses[1]) / 2.0;
    let g1 = (losses[2] + losses[3]) / 2.0;
    let hardest = usize::from(g1 > g0);
    let p_max = usize::from(r.final_p[1] > r.final_p[0]);
    assert_eq!(
        p_max, hardest,
        "p {:?} did not track group losses ({g0:.3}, {g1:.3})",
        r.final_p
    );
}
