//! Fault-injection semantics across every hierarchical path: graceful
//! degradation (stale models, survivor renormalization), retry/timeout
//! accounting against the closed form, and strict determinism — the same
//! seeded plan produces bit-identical runs across execution modes.

use hierminimax::core::algorithms::{
    Algorithm, HierFavg, HierFavgConfig, HierMinimax, HierMinimaxConfig, MultiLevelConfig,
    MultiLevelMinimax, OverselectConfig, OverselectMinimax, RunOpts, UpperLevel,
};
use hierminimax::core::problem::FederatedProblem;
use hierminimax::data::scenarios::tiny_problem;
use hierminimax::simnet::{FaultPlan, Link, MsgChannel, Parallelism};
use hm_testkit::{check_hierminimax_trace, reference_init_w};

fn opts(fault: FaultPlan, par: Parallelism, trace: bool) -> RunOpts {
    RunOpts {
        eval_every: 0,
        parallelism: par,
        trace,
        fault,
        ..Default::default()
    }
}

fn cfg(fault: FaultPlan, rounds: usize, trace: bool) -> HierMinimaxConfig {
    HierMinimaxConfig {
        rounds,
        tau1: 2,
        tau2: 2,
        m_edges: 2,
        eta_w: 0.1,
        eta_p: 0.01,
        batch_size: 2,
        loss_batch: 4,
        weight_update_model: Default::default(),
        quantizer: Default::default(),
        dropout: 0.0,
        tau2_per_edge: None,
        opts: opts(fault, Parallelism::Sequential, trace),
    }
}

/// A plan whose rates are all zero must not perturb the run at all, even
/// with every non-rate knob (retries, backoff, deadlines) cranked: the
/// zero-rate fast paths make no RNG draws, so iterates, communication and
/// sampling stay bit-identical to the fault-off default.
#[test]
fn zero_rate_plan_is_bit_identical_to_fault_off() {
    let sc = tiny_problem(3, 2, 41);
    let fp = FederatedProblem::logistic_from_scenario(&sc);
    let off = HierMinimax::new(cfg(FaultPlan::default(), 8, false)).run(&fp, 3);
    let zeroed = FaultPlan {
        max_retries: 7,
        backoff_base_s: 1.5,
        straggler_slowdown: 5.0,
        deadline_factor: 9.0,
        ..FaultPlan::default()
    };
    let on = HierMinimax::new(cfg(zeroed, 8, false)).run(&fp, 3);
    assert_eq!(off.final_w, on.final_w);
    assert_eq!(off.final_p, on.final_p);
    assert_eq!(off.avg_w, on.avg_w);
    assert_eq!(off.comm, on.comm);
    assert_eq!(on.faults, Default::default());
}

/// Every sampled edge out every round: the cloud never receives an
/// update, so `w^(k)` must stay bit-identical to the initialization, and
/// the dual weights must remain a feasible distribution throughout (the
/// traced run replays through the conformance automaton, which checks
/// feasibility round by round).
#[test]
fn all_sampled_edges_out_keeps_model_stale_and_p_feasible() {
    let sc = tiny_problem(3, 2, 42);
    let fp = FederatedProblem::logistic_from_scenario(&sc);
    let blackout = FaultPlan {
        edge_outage: 1.0,
        ..FaultPlan::default()
    };
    let c = cfg(blackout, 4, true);
    let r = HierMinimax::new(c.clone()).run(&fp, 7);
    let init = reference_init_w(&fp, 7);
    assert_eq!(r.final_w, init, "no surviving edge may move the model");
    let report = check_hierminimax_trace(&fp, &c, 7, &r.trace.events())
        .unwrap_or_else(|e| panic!("conformance under blackout: {e}"));
    assert_eq!(report.rounds, 4);
    assert!(report.faults > 0);
    let sum: f32 = r.final_p.iter().sum();
    assert!((sum - 1.0).abs() < 1e-4, "p left the simplex: {sum}");
    assert!(r.faults.outages > 0);
}

/// Survivor-only averaging renormalizes the aggregation weights to sum to
/// one: with `η_w = 0` every surviving client reports the broadcast model
/// unchanged, so any weight mass lost to crashed clients would show up as
/// the average drifting off the initialization.
#[test]
fn survivor_renormalization_sums_to_one() {
    let sc = tiny_problem(3, 2, 43);
    let fp = FederatedProblem::logistic_from_scenario(&sc);
    let crashy = FaultPlan {
        client_crash: 0.4,
        ..FaultPlan::default()
    };
    let mut c = cfg(crashy, 6, false);
    c.eta_w = 0.0;
    let r = HierMinimax::new(c).run(&fp, 11);
    assert!(r.faults.crashes > 0, "crash rate 0.4 must fire");
    let init = reference_init_w(&fp, 11);
    let drift = r
        .final_w
        .iter()
        .zip(&init)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0_f32, f32::max);
    assert!(
        drift < 1e-5,
        "renormalized survivor weights must sum to 1 (drift {drift})"
    );
}

/// Retry-exhausted rounds match the closed-form meter deltas: on a
/// single-edge topology the whole WAN exchange is three messages per
/// round, so the expected `EdgeCloud` totals can be recomputed exactly
/// from the plan's own delivery streams (every attempt retransmits the
/// full payload; a gave-up uplink still consumed its attempts).
#[test]
fn retry_exhausted_rounds_match_closed_form_comm() {
    let sc = tiny_problem(1, 2, 44);
    let fp = FederatedProblem::logistic_from_scenario(&sc);
    let lossy = FaultPlan {
        msg_loss: 0.4,
        max_retries: 1,
        ..FaultPlan::default()
    };
    let rounds = 12;
    let seed = 23;
    let mut c = cfg(lossy.clone(), rounds, false);
    c.m_edges = 1;
    let r = HierMinimax::new(c).run(&fp, seed);
    assert!(r.faults.retries > 0, "loss 0.4 over 36 messages must retry");
    assert!(r.faults.gave_up > 0, "max_retries 1 must exhaust sometimes");

    let d = fp.num_params() as u64;
    let (mut down_f, mut down_m, mut up_f, mut up_m) = (0_u64, 0_u64, 0_u64, 0_u64);
    for k in 0..rounds as u64 {
        // Phase 1 down: model + (c1, c2), one attempt per transmission.
        let dv = lossy.delivery(seed, k, 0, MsgChannel::Phase1Down, 0);
        down_f += (d + 2) * u64::from(dv.attempts);
        down_m += u64::from(dv.attempts);
        if dv.delivered {
            // Phase 1 up: (w_final, w_checkpoint), metered per attempt
            // whether or not the message ultimately arrives.
            let dv = lossy.delivery(seed, k, 0, MsgChannel::Phase1Up, 0);
            up_f += 2 * d * u64::from(dv.attempts);
            up_m += u64::from(dv.attempts);
        }
        // Phase 2 down: checkpoint model to the estimate edge; the scalar
        // reply rides the reliable control channel (one float, no retry).
        let dv = lossy.delivery(seed, k, 0, MsgChannel::Phase2Down, 0);
        down_f += d * u64::from(dv.attempts);
        down_m += u64::from(dv.attempts);
        if dv.delivered {
            up_f += 1;
            up_m += 1;
        }
    }
    assert_eq!(r.comm.downlink_floats(Link::EdgeCloud), down_f);
    assert_eq!(r.comm.downlink_msgs(Link::EdgeCloud), down_m);
    assert_eq!(r.comm.uplink_floats(Link::EdgeCloud), up_f);
    assert_eq!(r.comm.uplink_msgs(Link::EdgeCloud), up_m);
}

/// The chaos preset — every fault class at once — is bit-identical across
/// execution modes and reruns: fault draws key on (seed, purpose, round,
/// entity), never on scheduling.
#[test]
fn chaos_preset_is_deterministic_across_parallelism() {
    let sc = tiny_problem(3, 2, 45);
    let fp = FederatedProblem::logistic_from_scenario(&sc);
    let chaos = FaultPlan::preset("chaos").expect("chaos preset exists");
    let seq = HierMinimax::new(cfg(chaos.clone(), 10, false)).run(&fp, 17);
    let mut rc = cfg(chaos.clone(), 10, false);
    rc.opts.parallelism = Parallelism::Rayon;
    let par = HierMinimax::new(rc).run(&fp, 17);
    assert_eq!(seq.final_w, par.final_w);
    assert_eq!(seq.final_p, par.final_p);
    assert_eq!(seq.comm, par.comm);
    assert_eq!(seq.faults, par.faults);
    // And a rerun of the same mode reproduces itself exactly.
    let again = HierMinimax::new(cfg(chaos, 10, false)).run(&fp, 17);
    assert_eq!(seq.final_w, again.final_w);
    assert_eq!(seq.faults, again.faults);
}

/// Every hierarchical path degrades gracefully under heavy faults: runs
/// terminate, parameters stay finite, dual weights stay distributions,
/// and the injector's books record the damage.
#[test]
fn all_hierarchical_paths_survive_heavy_faults() {
    let sc = tiny_problem(4, 2, 46);
    let fp = FederatedProblem::logistic_from_scenario(&sc);
    let chaos = FaultPlan::preset("chaos").expect("chaos preset exists");

    let hf = HierFavg::new(HierFavgConfig {
        rounds: 8,
        tau1: 2,
        tau2: 2,
        m_edges: 2,
        eta_w: 0.1,
        batch_size: 2,
        quantizer: Default::default(),
        dropout: 0.1,
        opts: opts(chaos.clone(), Parallelism::Rayon, false),
    })
    .run(&fp, 29);
    assert!(hf.final_w.iter().all(|x| x.is_finite()));
    let hf_hits = hf.faults.crashes + hf.faults.outages + hf.faults.gave_up;
    assert!(hf_hits > 0, "chaos preset must hit HierFAVG");

    // Multi-level: cloud-link faults plus legacy dropout inside subtrees.
    let cloud_faults = FaultPlan {
        edge_outage: 0.3,
        msg_loss: 0.3,
        max_retries: 1,
        ..FaultPlan::default()
    };
    let ml = MultiLevelMinimax::new(MultiLevelConfig {
        rounds: 6,
        tau1: 2,
        tau2: 2,
        upper: vec![UpperLevel {
            group_size: 2,
            tau: 2,
        }],
        m_groups: 2,
        eta_w: 0.1,
        eta_p: 0.01,
        batch_size: 2,
        loss_batch: 4,
        dropout: 0.2,
        opts: opts(cloud_faults, Parallelism::Sequential, false),
    })
    .run(&fp, 31);
    assert!(ml.final_w.iter().all(|x| x.is_finite()));
    let psum: f32 = ml.final_p.iter().sum();
    assert!((psum - 1.0).abs() < 1e-4, "multi-level p left P: {psum}");
    assert!(ml.faults.outages + ml.faults.gave_up + ml.faults.crashes > 0);

    let ov = OverselectMinimax::new(OverselectConfig {
        rounds: 6,
        tau1: 2,
        tau2: 2,
        m_edges: 2,
        m_over: 3,
        seconds_per_slot: vec![1.0, 1.5, 2.0, 4.0],
        eta_w: 0.1,
        eta_p: 0.01,
        batch_size: 2,
        loss_batch: 4,
        dropout: 0.0,
        opts: opts(chaos, Parallelism::Sequential, false),
    })
    .run_timed(&fp, 37);
    assert!(ov.run.final_w.iter().all(|x| x.is_finite()));
    let osum: f32 = ov.run.final_p.iter().sum();
    assert!((osum - 1.0).abs() < 1e-4, "overselect p left P: {osum}");
    assert!(ov.run.faults.crashes + ov.run.faults.deadline_missed > 0);
}
