//! Byzantine-adversary guarantees at the full-run level (DESIGN.md §14).
//!
//! Four contracts are pinned here:
//!
//! 1. **Zero-rate inertness** — a plan whose `corrupt_rate` is zero makes
//!    no adversary-stream draws, and `Aggregator::Mean` routes through the
//!    exact legacy averaging kernels: runs with the adversary knobs at
//!    their defaults are bit-identical to `RunOpts::default()` runs across
//!    `{Sequential, Rayon} × {Chained, Barrier}`.
//! 2. **Adversarial determinism** — corrupted runs draw every corruption
//!    bit and payload from keyed streams, so attacked runs (any attack ×
//!    any robust aggregator, quarantine on) are bit-identical across both
//!    executors and both engines, down to the adversary counters.
//! 3. **Resume carries quarantine state** — a run killed at any cloud
//!    round resumes bit-identically with the adversary active and the
//!    z-score quarantine enabled: exclusion windows and cumulative
//!    `QuarantineStats` restore from the snapshot's quarantine section.
//! 4. **The attack-success oracle** — under the canonical sign-flip
//!    attack at 20% corruption, plain mean aggregation drifts ≥ 10× as
//!    far from its honest trajectory as the trimmed mean does (the same
//!    pinned floor the `byzantine` bench gates on).

use hierminimax::checkpoint::{read_snapshot, snapshot_path};
use hierminimax::core::algorithms::{
    Algorithm, HierFavg, HierFavgConfig, HierMinimax, HierMinimaxConfig, RunOpts,
};
use hierminimax::core::problem::FederatedProblem;
use hierminimax::core::{CheckpointOpts, RunResult};
use hierminimax::data::scenarios::tiny_problem;
use hierminimax::simnet::{AttackModel, ExecEngine, FaultPlan, Parallelism};
use hierminimax::tensor::Aggregator;
use std::sync::Arc;

const SEED: u64 = 23;
const ROUNDS: usize = 4;

fn problem() -> FederatedProblem {
    FederatedProblem::logistic_from_scenario(&tiny_problem(4, 4, 7))
}

fn byzantine_plan(attack: AttackModel) -> FaultPlan {
    FaultPlan {
        corrupt_rate: 0.2,
        attack,
        attack_scale: 8.0,
        ..FaultPlan::default()
    }
}

fn opts(par: Parallelism, engine: ExecEngine, plan: FaultPlan, agg: Aggregator) -> RunOpts {
    RunOpts {
        eval_every: 2,
        parallelism: par,
        fault: plan,
        engine,
        aggregator: agg,
        ..Default::default()
    }
}

fn hierminimax(rounds: usize, opts: RunOpts) -> HierMinimax {
    HierMinimax::new(HierMinimaxConfig {
        rounds,
        tau1: 2,
        tau2: 3,
        m_edges: 3,
        eta_w: 0.1,
        eta_p: 0.05,
        batch_size: 2,
        loss_batch: 4,
        weight_update_model: Default::default(),
        quantizer: Default::default(),
        dropout: 0.0,
        tau2_per_edge: None,
        opts,
    })
}

fn assert_identical(tag: &str, a: &RunResult, b: &RunResult) {
    assert_eq!(a.final_w, b.final_w, "{tag}: final_w differs");
    assert_eq!(a.avg_w, b.avg_w, "{tag}: avg_w differs");
    assert_eq!(a.final_p, b.final_p, "{tag}: final_p differs");
    assert_eq!(a.avg_p, b.avg_p, "{tag}: avg_p differs");
    assert_eq!(a.history, b.history, "{tag}: history differs");
    assert_eq!(a.comm, b.comm, "{tag}: comm stats differ");
    assert_eq!(a.faults, b.faults, "{tag}: fault stats differ");
    assert_eq!(a.quarantine, b.quarantine, "{tag}: adversary stats differ");
}

const GRID: [(Parallelism, ExecEngine); 4] = [
    (Parallelism::Sequential, ExecEngine::Chained),
    (Parallelism::Sequential, ExecEngine::Barrier),
    (Parallelism::Rayon, ExecEngine::Chained),
    (Parallelism::Rayon, ExecEngine::Barrier),
];

#[test]
fn zero_rate_adversary_knobs_are_inert() {
    // The frozen reference: `RunOpts::default()` predates the adversary
    // layer entirely. Spelling out a zero-rate plan and the Mean
    // aggregator must not change a single bit, on any executor × engine
    // cell, and must record no adversary activity.
    let fp = problem();
    for (par, engine) in GRID {
        let tag = format!("{par:?}/{engine:?}");
        let baseline = hierminimax(
            ROUNDS,
            RunOpts {
                eval_every: 2,
                parallelism: par,
                engine,
                ..Default::default()
            },
        )
        .run(&fp, SEED);
        let spelled = hierminimax(
            ROUNDS,
            opts(
                par,
                engine,
                FaultPlan {
                    corrupt_rate: 0.0,
                    attack: AttackModel::Collude,
                    attack_scale: 100.0,
                    ..FaultPlan::default()
                },
                Aggregator::Mean,
            ),
        )
        .run(&fp, SEED);
        assert_identical(&tag, &baseline, &spelled);
        assert_eq!(spelled.quarantine.total(), 0, "{tag}: phantom adversary");
    }
}

#[test]
fn adversarial_runs_are_bit_identical_across_executors_and_engines() {
    let fp = problem();
    let cells = [
        (AttackModel::SignFlip, Aggregator::Mean),
        (
            AttackModel::SignFlip,
            Aggregator::TrimmedMean { beta: 0.25 },
        ),
        (AttackModel::Noise, Aggregator::CoordinateMedian),
        (AttackModel::Collude, Aggregator::NormClip { tau: 1.0 }),
    ];
    for (attack, agg) in cells {
        let mut quarantined = opts(
            Parallelism::Sequential,
            ExecEngine::Chained,
            byzantine_plan(attack),
            agg,
        );
        quarantined.quarantine_z = 2.0;
        quarantined.quarantine_window = 2;
        let reference = hierminimax(ROUNDS, quarantined).run(&fp, SEED);
        assert!(
            reference.quarantine.corrupted_updates > 0,
            "{}/{}: 20% corruption over {ROUNDS} rounds must fire",
            attack.as_str(),
            agg.as_str()
        );
        for (par, engine) in GRID {
            let mut o = opts(par, engine, byzantine_plan(attack), agg);
            o.quarantine_z = 2.0;
            o.quarantine_window = 2;
            let r = hierminimax(ROUNDS, o).run(&fp, SEED);
            let tag = format!("{}/{} [{par:?}/{engine:?}]", attack.as_str(), agg.as_str());
            assert_identical(&tag, &reference, &r);
        }
    }
}

#[test]
fn resume_carries_quarantine_state_bit_identically() {
    // An aggressive adversary plus a tight z-score threshold, so both the
    // corruption counters and actual quarantine sentences (exclusion
    // windows spanning the kill point) must survive the snapshot.
    let fp = problem();
    let base = {
        let mut o = opts(
            Parallelism::Sequential,
            ExecEngine::Chained,
            byzantine_plan(AttackModel::SignFlip),
            Aggregator::TrimmedMean { beta: 0.25 },
        );
        o.quarantine_z = 1.0;
        o.quarantine_window = 3;
        o
    };
    for (name, factory) in [
        (
            "HierMinimax",
            Box::new(|o: RunOpts| Box::new(hierminimax(ROUNDS, o)) as Box<dyn Algorithm>)
                as Box<dyn Fn(RunOpts) -> Box<dyn Algorithm>>,
        ),
        (
            "HierFAVG",
            Box::new(|o: RunOpts| {
                Box::new(HierFavg::new(HierFavgConfig {
                    rounds: ROUNDS,
                    tau1: 2,
                    tau2: 3,
                    m_edges: 3,
                    eta_w: 0.1,
                    batch_size: 2,
                    quantizer: Default::default(),
                    dropout: 0.0,
                    opts: o,
                })) as Box<dyn Algorithm>
            }),
        ),
    ] {
        let dir = std::env::temp_dir().join(format!(
            "hm-byz-resume-{}-{}",
            name.to_lowercase(),
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let mut w_opts = base.clone();
        w_opts.checkpoint = CheckpointOpts::writing(&dir, 1);
        let full = factory(w_opts).run(&fp, SEED);
        assert!(
            full.quarantine.quarantined_clients > 0,
            "{name}: z = 1 under κ = 8 sign-flip must quarantine someone"
        );
        assert!(
            full.quarantine.excluded_uploads > 0,
            "{name}: a quarantined client must sit out at least one block"
        );

        for kill in 1..ROUNDS {
            let snap = read_snapshot(&snapshot_path(&dir, name, kill))
                .unwrap_or_else(|e| panic!("{name}: reading round-{kill} snapshot: {e}"));
            let mut r_opts = base.clone();
            r_opts.checkpoint.resume = Some(Arc::new(snap));
            let resumed = factory(r_opts).run(&fp, SEED);
            assert_identical(&format!("{name}: kill at round {kill}"), &full, &resumed);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

fn l2(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = f64::from(x) - f64::from(y);
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

/// Final-model drift an attack pushes through one aggregator, measured
/// against the same aggregator's honest run (so the aggregator's own
/// honest offset cancels out). The config mirrors the `byzantine` bench
/// cells: every edge participates each round, so honest and attacked
/// trajectories see the same participation and the drift isolates the
/// attack bias rather than sampling divergence.
fn attack_drift(fp: &FederatedProblem, agg: Aggregator, plan: FaultPlan) -> f64 {
    let run = |plan| {
        HierMinimax::new(HierMinimaxConfig {
            rounds: 10,
            tau1: 2,
            tau2: 4,
            m_edges: 4,
            eta_w: 0.05,
            eta_p: 0.01,
            batch_size: 4,
            loss_batch: 4,
            weight_update_model: Default::default(),
            quantizer: Default::default(),
            dropout: 0.0,
            tau2_per_edge: None,
            opts: opts(Parallelism::Sequential, ExecEngine::Chained, plan, agg),
        })
        .run(fp, SEED)
    };
    let honest = run(FaultPlan::default());
    let attacked = run(plan);
    l2(&attacked.final_w, &honest.final_w)
}

#[test]
fn sign_flip_defeats_mean_but_not_trimmed_mean() {
    // The attack-success oracle: sign-flip at 20% corruption (κ = 10)
    // drags plain averaging at least 10× further off its honest
    // trajectory than the trimmed mean, which discards the corrupted
    // tails. Deterministic, so the floor is a hard bound, not a
    // statistical one.
    let fp = problem();
    let plan = FaultPlan {
        attack_scale: 10.0,
        ..byzantine_plan(AttackModel::SignFlip)
    };
    let mean = attack_drift(&fp, Aggregator::Mean, plan.clone());
    let trimmed = attack_drift(&fp, Aggregator::TrimmedMean { beta: 0.25 }, plan);
    assert!(
        mean >= 10.0 * trimmed,
        "mean drift {mean:.4} < 10 × trimmed drift {trimmed:.4}"
    );
}

#[test]
fn byzantine_preset_is_adversarial_and_nothing_else() {
    let plan = FaultPlan::preset("byzantine").unwrap();
    assert!(plan.has_adversary());
    assert!(
        plan.is_none(),
        "byzantine preset must not inject crashes, outages, loss, or stragglers"
    );
    assert_eq!(plan.attack, AttackModel::SignFlip);
    plan.validate().unwrap();
}
