//! Telemetry-layer invariants, cross-checked against the protocol trace
//! and the `hm-testkit` conformance automaton:
//!
//! - per-round `comm_delta` in the telemetry stream equals the trace's
//!   `RoundComm` delta, and the deltas telescope to the final meter totals;
//! - the JSONL file a run writes passes the schema validator and its
//!   `dual_update` lines reproduce the `p^(k)` trajectory from history;
//! - enabling telemetry cannot perturb a run (bit-identical iterates);
//! - every algorithm emits a well-formed `run_start` … `run_end` stream
//!   with one `round_end` per training round.

use std::sync::Arc;

use hierminimax::core::algorithms::{
    AflConfig, Algorithm, Drfa, DrfaConfig, FedAvg, FedAvgConfig, HierFavg, HierFavgConfig,
    HierMinimax, HierMinimaxConfig, MultiLevelConfig, MultiLevelMinimax, RunOpts, StochasticAfl,
    UpperLevel,
};
use hierminimax::core::problem::FederatedProblem;
use hierminimax::data::scenarios::tiny_problem;
use hierminimax::simnet::trace::Event;
use hierminimax::simnet::{CommStats, Parallelism, Quantizer};
use hierminimax::telemetry::{
    comm_to_json, json, validate_stream, MemorySink, Telemetry, TelemetryEvent,
};
use hm_testkit::check_hierminimax_trace;

fn opts_with(telemetry: Telemetry, trace: bool) -> RunOpts {
    RunOpts {
        eval_every: 1,
        parallelism: Parallelism::Sequential,
        trace,
        telemetry,
        ..Default::default()
    }
}

fn hm_cfg(rounds: usize, opts: RunOpts) -> HierMinimaxConfig {
    HierMinimaxConfig {
        rounds,
        tau1: 2,
        tau2: 2,
        m_edges: 2,
        eta_w: 0.1,
        eta_p: 0.05,
        batch_size: 2,
        loss_batch: 4,
        weight_update_model: Default::default(),
        quantizer: Quantizer::Exact,
        dropout: 0.0,
        tau2_per_edge: None,
        opts,
    }
}

fn round_ends(events: &[TelemetryEvent]) -> Vec<&TelemetryEvent> {
    events
        .iter()
        .filter(|e| matches!(e, TelemetryEvent::RoundEnd { .. }))
        .collect()
}

/// The telemetry stream agrees with the independently-validated protocol
/// trace: the run replays through the conformance automaton, and each
/// round's `comm_delta` matches the trace's `RoundComm` delta exactly.
#[test]
fn round_comm_deltas_match_trace_and_conformance_automaton() {
    let sc = tiny_problem(3, 2, 21);
    let fp = FederatedProblem::logistic_from_scenario(&sc);
    let sink = Arc::new(MemorySink::new());
    let cfg = hm_cfg(5, opts_with(Telemetry::with_sink(sink.clone()), true));
    let seed = 77;
    let r = HierMinimax::new(cfg.clone()).run(&fp, seed);

    let report = check_hierminimax_trace(&fp, &cfg, seed, &r.trace.events())
        .unwrap_or_else(|e| panic!("conformance: {e}"));
    assert_eq!(report.rounds, cfg.rounds);

    let events = sink.events();
    let ends = round_ends(&events);
    assert_eq!(ends.len(), report.rounds);

    let trace_deltas: Vec<CommStats> = r
        .trace
        .events()
        .iter()
        .filter_map(|e| match e {
            Event::RoundComm { delta, .. } => Some(*delta),
            _ => None,
        })
        .collect();
    assert_eq!(trace_deltas.len(), ends.len());

    let mut last_sim = 0.0_f64;
    for (k, (end, trace_delta)) in ends.iter().zip(&trace_deltas).enumerate() {
        let TelemetryEvent::RoundEnd {
            round,
            comm_delta,
            comm_total,
            sim_s,
            ..
        } = end
        else {
            unreachable!()
        };
        assert_eq!(*round, k);
        assert_eq!(
            comm_to_json(comm_delta),
            comm_to_json(trace_delta),
            "round {k} delta"
        );
        // Cumulative totals never decrease, so simulated time is monotone.
        assert!(*sim_s >= last_sim, "round {k}: sim_s went backwards");
        last_sim = *sim_s;
        // The deltas telescope: total through round k == sum of deltas,
        // which the `since` contract guarantees; spot-check the endpoint.
        if k + 1 == ends.len() {
            assert_eq!(comm_to_json(comm_total), comm_to_json(&r.comm));
        }
    }

    let Some(TelemetryEvent::RunEnd {
        rounds, comm_total, ..
    }) = events.last()
    else {
        panic!("stream must end with run_end, got {:?}", events.last());
    };
    assert_eq!(*rounds, cfg.rounds);
    assert_eq!(comm_to_json(comm_total), comm_to_json(&r.comm));
}

/// A JSONL file written by a run validates against the schema and its
/// `dual_update` lines carry exactly the `p^(k)` trajectory that history
/// records (f32 values survive the JSON round trip bit-exactly).
#[test]
fn jsonl_stream_validates_and_p_trajectory_matches_history() {
    let dir = std::env::temp_dir().join(format!("hm-telemetry-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("run.jsonl");

    let sc = tiny_problem(3, 2, 22);
    let fp = FederatedProblem::logistic_from_scenario(&sc);
    let tel = Telemetry::jsonl(&path).unwrap();
    let cfg = hm_cfg(4, opts_with(tel, false));
    let r = HierMinimax::new(cfg.clone()).run(&fp, 5);

    let body = std::fs::read_to_string(&path).unwrap();
    let summary = validate_stream(&body).unwrap_or_else(|e| panic!("{e}\n{body}"));
    assert_eq!(summary.runs, 1);
    assert_eq!(summary.events_by_kind.get("round_end"), Some(&cfg.rounds));
    assert_eq!(summary.events_by_kind.get("dual_update"), Some(&cfg.rounds));

    let p_lines: Vec<Vec<f32>> = body
        .lines()
        .filter_map(|line| {
            let v = json::parse(line).unwrap();
            if v.get("ev").unwrap().as_str() != Some("dual_update") {
                return None;
            }
            Some(
                v.get("p")
                    .unwrap()
                    .as_arr()
                    .unwrap()
                    .iter()
                    .map(|x| x.as_f64().unwrap() as f32)
                    .collect(),
            )
        })
        .collect();
    assert_eq!(p_lines.len(), r.history.rounds.len());
    for (k, (from_stream, rec)) in p_lines.iter().zip(&r.history.rounds).enumerate() {
        assert_eq!(from_stream, &rec.p, "p^({k}) diverged");
    }

    std::fs::remove_dir_all(&dir).unwrap();
}

/// Telemetry is pure observation: running with a sink attached produces
/// bit-identical iterates to running with the disabled handle.
#[test]
fn enabling_telemetry_is_bit_identical_to_disabled() {
    let sc = tiny_problem(3, 2, 23);
    let fp = FederatedProblem::logistic_from_scenario(&sc);
    let off = HierMinimax::new(hm_cfg(4, opts_with(Telemetry::disabled(), false))).run(&fp, 9);
    let sink = Arc::new(MemorySink::new());
    let on = HierMinimax::new(hm_cfg(
        4,
        opts_with(Telemetry::with_sink(sink.clone()), false),
    ))
    .run(&fp, 9);
    assert!(!sink.is_empty());
    assert_eq!(off.final_w, on.final_w);
    assert_eq!(off.final_p, on.final_p);
    assert_eq!(off.avg_w, on.avg_w);
    assert_eq!(off.avg_p, on.avg_p);
}

/// Every wired algorithm emits `run_start` first, `run_end` last, one
/// `round_end` per training round with consecutive indices, and final
/// totals matching the run's own communication counters.
#[test]
fn all_algorithms_emit_consistent_streams() {
    let sc = tiny_problem(4, 2, 24);
    let fp = FederatedProblem::logistic_from_scenario(&sc);
    let rounds = 3;

    let run_with = |name: &str, f: &dyn Fn(RunOpts) -> hierminimax::core::RunResult| {
        let sink = Arc::new(MemorySink::new());
        let r = f(opts_with(Telemetry::with_sink(sink.clone()), false));
        let events = sink.events();
        let Some(TelemetryEvent::RunStart {
            algorithm,
            rounds: planned,
            ..
        }) = events.first()
        else {
            panic!("{name}: first event {:?}", events.first());
        };
        assert_eq!(algorithm, name);
        assert_eq!(*planned, rounds);
        let ends = round_ends(&events);
        assert_eq!(ends.len(), rounds, "{name}");
        for (k, e) in ends.iter().enumerate() {
            let TelemetryEvent::RoundEnd { round, .. } = e else {
                unreachable!()
            };
            assert_eq!(*round, k, "{name}");
        }
        let Some(TelemetryEvent::RunEnd {
            rounds: done,
            comm_total,
            ..
        }) = events.last()
        else {
            panic!("{name}: last event {:?}", events.last());
        };
        assert_eq!(*done, rounds, "{name}");
        assert_eq!(
            comm_to_json(comm_total),
            comm_to_json(&r.comm),
            "{name}: run_end totals"
        );
    };

    run_with("HierMinimax", &|opts| {
        HierMinimax::new(hm_cfg(rounds, opts)).run(&fp, 7)
    });
    run_with("HierFAVG", &|opts| {
        HierFavg::new(HierFavgConfig {
            rounds,
            tau1: 2,
            tau2: 2,
            m_edges: 2,
            eta_w: 0.1,
            batch_size: 2,
            quantizer: Quantizer::Exact,
            dropout: 0.0,
            opts,
        })
        .run(&fp, 7)
    });
    run_with("FedAvg", &|opts| {
        FedAvg::new(FedAvgConfig {
            rounds,
            tau1: 2,
            m_clients: 4,
            eta_w: 0.1,
            batch_size: 2,
            opts,
        })
        .run(&fp, 7)
    });
    run_with("DRFA", &|opts| {
        Drfa::new(DrfaConfig {
            rounds,
            tau1: 2,
            m_clients: 4,
            eta_w: 0.1,
            eta_q: 0.1,
            batch_size: 2,
            loss_batch: 4,
            opts,
        })
        .run(&fp, 7)
    });
    run_with("Stochastic-AFL", &|opts| {
        StochasticAfl::new(AflConfig {
            rounds,
            m_clients: 4,
            eta_w: 0.1,
            eta_q: 0.1,
            batch_size: 2,
            loss_batch: 4,
            opts,
        })
        .run(&fp, 7)
    });
    run_with("MultiLevelMinimax", &|opts| {
        MultiLevelMinimax::new(MultiLevelConfig {
            rounds,
            tau1: 2,
            tau2: 2,
            upper: vec![UpperLevel {
                group_size: 2,
                tau: 2,
            }],
            m_groups: 2,
            eta_w: 0.1,
            eta_p: 0.01,
            batch_size: 2,
            loss_batch: 4,
            dropout: 0.0,
            opts,
        })
        .run(&fp, 7)
    });
}
