//! # hierminimax
//!
//! Umbrella crate for the Rust reproduction of *Distributed Minimax Fair
//! Optimization over Hierarchical Networks* (HierMinimax, ICPP 2024).
//!
//! This crate re-exports the workspace members under short names so examples
//! and downstream users can depend on a single crate:
//!
//! - [`tensor`] — dense matrix/vector math.
//! - [`data`] — dataset generators, partitioners, RNG streams.
//! - [`nn`] — model families (multinomial logistic regression, MLP).
//! - [`optim`] — SGD, projections (simplex et al.), schedules.
//! - [`simnet`] — hierarchical client-edge-cloud network simulator with
//!   communication metering.
//! - [`core`] — the HierMinimax algorithm and all baselines, metrics, and
//!   the duality-gap evaluator.
//! - [`telemetry`] — structured run telemetry: JSONL event streams,
//!   pluggable sinks, and the stream schema validator (DESIGN.md §10).
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`, or:
//!
//! ```
//! use hierminimax::core::algorithms::{Algorithm, HierMinimax, HierMinimaxConfig};
//! use hierminimax::core::problem::FederatedProblem;
//! use hierminimax::data::scenarios;
//!
//! // A tiny one-class-per-edge problem (3 edges, 2 clients each).
//! let problem = scenarios::tiny_problem(3, 2, 42);
//! let fp = FederatedProblem::logistic_from_scenario(&problem);
//! let cfg = HierMinimaxConfig { rounds: 5, ..Default::default() };
//! let run = HierMinimax::new(cfg).run(&fp, 42);
//! assert_eq!(run.history.rounds.len(), 5);
//! ```

pub use hm_checkpoint as checkpoint;
pub use hm_core as core;
pub use hm_data as data;
pub use hm_nn as nn;
pub use hm_optim as optim;
pub use hm_simnet as simnet;
pub use hm_telemetry as telemetry;
pub use hm_tensor as tensor;
